package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// Options configures the per-request observability middleware a route
// set installs around its handlers. The zero value is the always-on
// baseline: request IDs are generated, propagated, and echoed on every
// response, trace context is parsed and threaded, but nothing is logged
// or retained and metrics stay enabled.
type Options struct {
	// Component names the serving tier in request logs ("serve",
	// "router", "shard"), so merged log streams stay attributable.
	Component string
	// Logger receives request logs; nil falls back to slog.Default when
	// RequestLog or SlowQueryThreshold require one.
	Logger *slog.Logger
	// RequestLog emits one structured log line per request with method,
	// path, status, duration, request ID, trace ID, and per-stage
	// timings.
	RequestLog bool
	// SlowQueryThreshold, when positive, logs any request slower than
	// the threshold at Warn level even when RequestLog is off.
	SlowQueryThreshold time.Duration
	// DisableMetrics removes the /v1/metrics route entirely.
	DisableMetrics bool
	// Tracer applies the trace sampling/retention policy: head sampling
	// where traces originate, always-keep for slow and failed requests,
	// and the store behind /v1/debug/traces. Nil keeps span recording
	// and context propagation working but retains nothing.
	Tracer *Tracer
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// responseWriter captures the response status and carries the request
// and trace IDs so that envelope writers deeper in the stack
// (WriteError) can stamp them without threading parameters through
// every call site.
type responseWriter struct {
	http.ResponseWriter
	status    int
	requestID string
	traceID   string
}

func (w *responseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *responseWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ObsRequestID exposes the request ID to ResponseRequestID's unwrap
// walk.
func (w *responseWriter) ObsRequestID() string { return w.requestID }

// ObsTraceID exposes the trace ID to ResponseTraceID's unwrap walk.
func (w *responseWriter) ObsTraceID() string { return w.traceID }

// Unwrap lets http.ResponseController and ResponseRequestID reach the
// underlying writer.
func (w *responseWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ResponseRequestID walks a ResponseWriter's Unwrap chain looking for
// the middleware's request ID. "" when the middleware is not installed
// — error envelopes then simply omit the field.
func ResponseRequestID(w http.ResponseWriter) string {
	for w != nil {
		if ider, ok := w.(interface{ ObsRequestID() string }); ok {
			return ider.ObsRequestID()
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return ""
		}
		w = u.Unwrap()
	}
	return ""
}

// ResponseTraceID walks a ResponseWriter's Unwrap chain looking for the
// middleware's trace ID. "" when the middleware is not installed.
func ResponseTraceID(w http.ResponseWriter) string {
	for w != nil {
		if ider, ok := w.(interface{ ObsTraceID() string }); ok {
			return ider.ObsTraceID()
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return ""
		}
		w = u.Unwrap()
	}
	return ""
}

// Middleware wraps a handler with request-ID handling, trace recording,
// and (per Options) request/slow-query logging.
//
// The request ID is taken from a valid inbound X-Request-Id header or
// freshly generated, echoed on the response, and reachable downstream
// via RequestIDFrom(ctx) and ResponseRequestID(w).
//
// Trace context is taken from a valid inbound traceparent header — the
// request then joins a trace begun upstream, keeping its trace ID and
// sampling decision — or a fresh trace is started and head-sampled by
// opts.Tracer. Either way a root span covers the handler, StartSpan
// nests under it via the request context, X-Trace-Id is echoed on the
// response, and when the request finishes the Tracer decides retention
// (head-sampled, slow, or failed traces land in the store behind
// /v1/debug/traces).
func Middleware(opts Options, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !ValidRequestID(id) {
			id = NewRequestID()
		}
		var trace *Trace
		if parent, ok := ParseTraceParent(r.Header.Get(TraceParentHeader)); ok {
			trace = NewChildTrace(id, parent)
		} else {
			trace = NewTrace(id)
			trace.SetSampled(opts.Tracer.headSample())
		}
		w.Header().Set(RequestIDHeader, id)
		w.Header().Set(TraceIDHeader, trace.TraceID())
		rw := &responseWriter{ResponseWriter: w, requestID: id, traceID: trace.TraceID()}

		ctx, root := StartSpan(WithTrace(r.Context(), trace), r.Method+" "+r.URL.Path)
		trace.setRoot(root)
		start := time.Now()
		next.ServeHTTP(rw, r.WithContext(ctx))
		elapsed := time.Since(start)
		root.End()

		status := rw.status
		if status == 0 {
			status = http.StatusOK
		}
		opts.Tracer.Finish(trace, status, elapsed)

		slow := opts.SlowQueryThreshold > 0 && elapsed >= opts.SlowQueryThreshold
		failed := status >= 500
		if !opts.RequestLog && !slow && !failed {
			return
		}
		attrs := []slog.Attr{
			slog.String("component", opts.Component),
			slog.String("request_id", id),
			slog.String("trace_id", trace.TraceID()),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("remote", r.RemoteAddr),
			slog.Int("status", status),
			slog.Duration("duration", elapsed),
		}
		for _, st := range trace.Stages() {
			attrs = append(attrs, slog.Duration("stage_"+st.Name, st.Duration))
		}
		logger := opts.logger()
		switch {
		case failed:
			// A 5xx must reach the logs even when request logging is off
			// and the failure was fast — an invisible internal error is
			// the worst kind.
			logger.LogAttrs(r.Context(), slog.LevelError, "request failed", attrs...)
		case slow:
			logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
		default:
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}
