package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// Options configures the per-request observability middleware a route
// set installs around its handlers. The zero value is the always-on
// baseline: request IDs are generated, propagated, and echoed on every
// response, but nothing is logged and metrics stay enabled.
type Options struct {
	// Component names the serving tier in request logs ("serve",
	// "router", "shard"), so merged log streams stay attributable.
	Component string
	// Logger receives request logs; nil falls back to slog.Default when
	// RequestLog or SlowQueryThreshold require one.
	Logger *slog.Logger
	// RequestLog emits one structured log line per request with method,
	// path, status, duration, request ID, and per-stage timings.
	RequestLog bool
	// SlowQueryThreshold, when positive, logs any request slower than
	// the threshold at Warn level even when RequestLog is off.
	SlowQueryThreshold time.Duration
	// DisableMetrics removes the /v1/metrics route entirely.
	DisableMetrics bool
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// responseWriter captures the response status and carries the request
// ID so that envelope writers deeper in the stack (WriteError) can
// stamp it without threading a parameter through every call site.
type responseWriter struct {
	http.ResponseWriter
	status    int
	requestID string
}

func (w *responseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *responseWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ObsRequestID exposes the request ID to ResponseRequestID's unwrap
// walk.
func (w *responseWriter) ObsRequestID() string { return w.requestID }

// Unwrap lets http.ResponseController and ResponseRequestID reach the
// underlying writer.
func (w *responseWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ResponseRequestID walks a ResponseWriter's Unwrap chain looking for
// the middleware's request ID. "" when the middleware is not installed
// — error envelopes then simply omit the field.
func ResponseRequestID(w http.ResponseWriter) string {
	for w != nil {
		if ider, ok := w.(interface{ ObsRequestID() string }); ok {
			return ider.ObsRequestID()
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return ""
		}
		w = u.Unwrap()
	}
	return ""
}

// Middleware wraps a handler with request-ID handling, trace context,
// and (per Options) request/slow-query logging. The request ID is taken
// from a valid inbound X-Request-Id header or freshly generated, echoed
// on the response, and reachable downstream via RequestIDFrom(ctx) and
// ResponseRequestID(w).
func Middleware(opts Options, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !ValidRequestID(id) {
			id = NewRequestID()
		}
		trace := NewTrace(id)
		w.Header().Set(RequestIDHeader, id)
		rw := &responseWriter{ResponseWriter: w, requestID: id}
		start := time.Now()
		next.ServeHTTP(rw, r.WithContext(WithTrace(r.Context(), trace)))
		elapsed := time.Since(start)

		slow := opts.SlowQueryThreshold > 0 && elapsed >= opts.SlowQueryThreshold
		if !opts.RequestLog && !slow {
			return
		}
		status := rw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []slog.Attr{
			slog.String("component", opts.Component),
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("remote", r.RemoteAddr),
			slog.Int("status", status),
			slog.Duration("duration", elapsed),
		}
		for _, st := range trace.Stages() {
			attrs = append(attrs, slog.Duration("stage_"+st.Name, st.Duration))
		}
		logger := opts.logger()
		if slow {
			logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
		} else {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}
