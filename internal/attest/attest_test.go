package attest

import (
	"errors"
	"testing"

	"caltrain/internal/sgx"
)

// harness builds an authority, a quoting enclave, and an initialized
// enclave named "train".
func harness(t *testing.T) (*Authority, *QuotingEnclave, *sgx.Enclave, sgx.Measurement) {
	t.Helper()
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	qe, err := auth.Provision("server-1")
	if err != nil {
		t.Fatal(err)
	}
	encl := sgx.NewDevice(7).CreateEnclave(sgx.Config{Name: "train"})
	m, err := encl.Init()
	if err != nil {
		t.Fatal(err)
	}
	return auth, qe, encl, m
}

func TestVerifyHappyPath(t *testing.T) {
	auth, qe, encl, m := harness(t)
	rd := BindKey([]byte("channel-pubkey"))
	q, err := qe.QuoteEnclave(encl, rd)
	if err != nil {
		t.Fatal(err)
	}
	authPub, err := auth.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(authPub, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(q, rd); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestVerifyRejectsWrongMeasurement(t *testing.T) {
	auth, qe, encl, _ := harness(t)
	rd := BindKey([]byte("k"))
	q, err := qe.QuoteEnclave(encl, rd)
	if err != nil {
		t.Fatal(err)
	}
	authPub, _ := auth.PublicKey()
	// Verifier expects a different enclave identity.
	other := sgx.NewDevice(7).CreateEnclave(sgx.Config{Name: "evil"})
	om, _ := other.Init()
	v, err := NewVerifier(authPub, om)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(q, rd); !errors.Is(err, ErrWrongMeasurement) {
		t.Fatalf("err = %v, want ErrWrongMeasurement", err)
	}
}

func TestVerifyRejectsWrongReportData(t *testing.T) {
	auth, qe, encl, m := harness(t)
	q, err := qe.QuoteEnclave(encl, BindKey([]byte("real-key")))
	if err != nil {
		t.Fatal(err)
	}
	authPub, _ := auth.PublicKey()
	v, _ := NewVerifier(authPub, m)
	if err := v.Verify(q, BindKey([]byte("mitm-key"))); !errors.Is(err, ErrWrongReportData) {
		t.Fatalf("err = %v, want ErrWrongReportData", err)
	}
}

func TestVerifyRejectsTamperedQuote(t *testing.T) {
	auth, qe, encl, m := harness(t)
	rd := BindKey([]byte("k"))
	q, err := qe.QuoteEnclave(encl, rd)
	if err != nil {
		t.Fatal(err)
	}
	authPub, _ := auth.PublicKey()
	v, _ := NewVerifier(authPub, m)

	// Tamper with the measurement after signing: signature check fails
	// before the measurement comparison can pass.
	bad := *q
	bad.Measurement[0] ^= 1
	if err := v.Verify(&bad, rd); !errors.Is(err, ErrBadQuoteSig) {
		t.Fatalf("tampered measurement: %v, want ErrBadQuoteSig", err)
	}

	// Corrupt the signature itself.
	bad2 := *q
	bad2.Signature = append([]byte(nil), q.Signature...)
	bad2.Signature[len(bad2.Signature)-1] ^= 1
	if err := v.Verify(&bad2, rd); !errors.Is(err, ErrBadQuoteSig) {
		t.Fatalf("corrupt signature: %v, want ErrBadQuoteSig", err)
	}
}

func TestVerifyRejectsRogueAuthority(t *testing.T) {
	// A quote certified by a different (attacker) authority must fail the
	// platform-cert check against the trusted root.
	auth, _, encl, m := harness(t)
	rogue, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	rogueQE, err := rogue.Provision("rogue-server")
	if err != nil {
		t.Fatal(err)
	}
	rd := BindKey([]byte("k"))
	q, err := rogueQE.QuoteEnclave(encl, rd)
	if err != nil {
		t.Fatal(err)
	}
	authPub, _ := auth.PublicKey()
	v, _ := NewVerifier(authPub, m)
	if err := v.Verify(q, rd); !errors.Is(err, ErrBadPlatformCert) {
		t.Fatalf("err = %v, want ErrBadPlatformCert", err)
	}
}

func TestQuoteRequiresInitializedEnclave(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	qe, err := auth.Provision("p")
	if err != nil {
		t.Fatal(err)
	}
	encl := sgx.NewDevice(1).CreateEnclave(sgx.Config{Name: "uninit"})
	if _, err := qe.QuoteEnclave(encl, [ReportDataSize]byte{}); err == nil {
		t.Fatal("expected error quoting uninitialized enclave")
	}
}

func TestVerifyNilQuote(t *testing.T) {
	auth, _, _, m := harness(t)
	authPub, _ := auth.PublicKey()
	v, _ := NewVerifier(authPub, m)
	if err := v.Verify(nil, [ReportDataSize]byte{}); err == nil {
		t.Fatal("expected error for nil quote")
	}
}

func TestBindKeyDistinguishesKeys(t *testing.T) {
	a := BindKey([]byte("key-a"))
	b := BindKey([]byte("key-b"))
	if a == b {
		t.Fatal("different keys must bind differently")
	}
	if a != BindKey([]byte("key-a")) {
		t.Fatal("binding must be deterministic")
	}
}
