// Package attest simulates the remote-attestation infrastructure CalTrain
// relies on (§IV-A, "Establishing a Training Enclave"): before provisioning
// any secret, each training participant verifies that (a) it is talking to
// a genuine platform, (b) the enclave's measurement matches the code and
// data everyone agreed on, and (c) the secure channel's key is bound into
// the attestation evidence.
//
// The simulation mirrors the EPID/IAS protocol shape with stdlib crypto: a
// root Authority (Intel's role) certifies per-platform Quoting Enclave
// keys; the Quoting Enclave signs Quotes over (measurement, report data);
// a Verifier checks the certificate chain, the signature, the expected
// measurement, and the report-data binding.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"

	"caltrain/internal/sgx"
)

// Errors returned by quote verification.
var (
	ErrBadPlatformCert  = errors.New("attest: platform certificate not signed by authority")
	ErrBadQuoteSig      = errors.New("attest: quote signature invalid")
	ErrWrongMeasurement = errors.New("attest: enclave measurement does not match expectation")
	ErrWrongReportData  = errors.New("attest: report data does not match expectation")
)

// ReportDataSize is the size of a quote's user-data field (64 bytes, as in
// SGX REPORTDATA).
const ReportDataSize = 64

// Quote is signed attestation evidence for one enclave: its measurement
// plus caller-chosen report data (CalTrain binds the hash of the enclave's
// ephemeral channel public key there).
type Quote struct {
	Measurement  sgx.Measurement
	ReportData   [ReportDataSize]byte
	PlatformID   string
	PlatformCert []byte // authority's signature over the platform key
	PlatformKey  []byte // marshaled ECDSA public key
	Signature    []byte // platform signature over (measurement, report data)
}

// Authority is the root of trust (Intel's attestation-service role). It
// certifies platform quoting keys and exposes its public key to verifiers.
type Authority struct {
	key *ecdsa.PrivateKey
}

// NewAuthority generates a fresh attestation root.
func NewAuthority() (*Authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: authority keygen: %w", err)
	}
	return &Authority{key: key}, nil
}

// PublicKey returns the authority's marshaled public key for verifiers.
func (a *Authority) PublicKey() ([]byte, error) {
	pub, err := x509.MarshalPKIXPublicKey(&a.key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: marshal authority key: %w", err)
	}
	return pub, nil
}

// QuotingEnclave holds a platform's certified quoting key. One exists per
// SGX device.
type QuotingEnclave struct {
	platformID string
	key        *ecdsa.PrivateKey
	cert       []byte
	pubDER     []byte
}

// Provision creates and certifies a Quoting Enclave for a platform.
func (a *Authority) Provision(platformID string) (*QuotingEnclave, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: platform keygen: %w", err)
	}
	pubDER, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: marshal platform key: %w", err)
	}
	digest := platformCertDigest(platformID, pubDER)
	cert, err := ecdsa.SignASN1(rand.Reader, a.key, digest)
	if err != nil {
		return nil, fmt.Errorf("attest: certify platform: %w", err)
	}
	return &QuotingEnclave{platformID: platformID, key: key, cert: cert, pubDER: pubDER}, nil
}

func platformCertDigest(platformID string, pubDER []byte) []byte {
	h := sha256.New()
	h.Write([]byte("caltrain-platform-cert:"))
	h.Write([]byte(platformID))
	h.Write(pubDER)
	return h.Sum(nil)
}

func quoteDigest(m sgx.Measurement, reportData [ReportDataSize]byte) []byte {
	h := sha256.New()
	h.Write([]byte("caltrain-quote:"))
	h.Write(m[:])
	h.Write(reportData[:])
	return h.Sum(nil)
}

// QuoteEnclave produces a signed quote for an initialized enclave with the
// given report data.
func (q *QuotingEnclave) QuoteEnclave(e *sgx.Enclave, reportData [ReportDataSize]byte) (*Quote, error) {
	m, err := e.Measurement()
	if err != nil {
		return nil, fmt.Errorf("attest: quote: %w", err)
	}
	sig, err := ecdsa.SignASN1(rand.Reader, q.key, quoteDigest(m, reportData))
	if err != nil {
		return nil, fmt.Errorf("attest: quote sign: %w", err)
	}
	return &Quote{
		Measurement:  m,
		ReportData:   reportData,
		PlatformID:   q.platformID,
		PlatformCert: q.cert,
		PlatformKey:  q.pubDER,
		Signature:    sig,
	}, nil
}

// Verifier validates quotes against a trusted authority key and an
// expected enclave measurement. Participants construct one after computing
// the expected measurement from the agreed-upon enclave code and data
// (§III, Consensus and Cooperation).
type Verifier struct {
	authorityKey *ecdsa.PublicKey
	expected     sgx.Measurement
}

// NewVerifier constructs a verifier trusting the given marshaled authority
// public key and expecting the given measurement.
func NewVerifier(authorityPub []byte, expected sgx.Measurement) (*Verifier, error) {
	keyAny, err := x509.ParsePKIXPublicKey(authorityPub)
	if err != nil {
		return nil, fmt.Errorf("attest: parse authority key: %w", err)
	}
	key, ok := keyAny.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("attest: authority key is %T, want *ecdsa.PublicKey", keyAny)
	}
	return &Verifier{authorityKey: key, expected: expected}, nil
}

// Verify checks the full chain: platform certificate, quote signature,
// expected measurement, and report-data binding. wantReportData is
// compared in full; pass the same bytes the prover embedded.
func (v *Verifier) Verify(q *Quote, wantReportData [ReportDataSize]byte) error {
	if q == nil {
		return errors.New("attest: nil quote")
	}
	// 1. Platform key chains to the authority.
	if !ecdsa.VerifyASN1(v.authorityKey, platformCertDigest(q.PlatformID, q.PlatformKey), q.PlatformCert) {
		return ErrBadPlatformCert
	}
	// 2. Quote signed by the platform key.
	pkAny, err := x509.ParsePKIXPublicKey(q.PlatformKey)
	if err != nil {
		return fmt.Errorf("attest: parse platform key: %w", err)
	}
	pk, ok := pkAny.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("attest: platform key is %T, want *ecdsa.PublicKey", pkAny)
	}
	if !ecdsa.VerifyASN1(pk, quoteDigest(q.Measurement, q.ReportData), q.Signature) {
		return ErrBadQuoteSig
	}
	// 3. Measurement matches consensus expectation.
	if q.Measurement != v.expected {
		return fmt.Errorf("%w: got %s want %s", ErrWrongMeasurement, q.Measurement, v.expected)
	}
	// 4. Report data binds the channel key.
	if q.ReportData != wantReportData {
		return ErrWrongReportData
	}
	return nil
}

// BindKey packs the SHA-256 of a public key into a report-data field, the
// binding convention used between attestation and the secure channel.
func BindKey(pubKey []byte) [ReportDataSize]byte {
	var rd [ReportDataSize]byte
	sum := sha256.Sum256(pubKey)
	copy(rd[:], sum[:])
	binary.LittleEndian.PutUint32(rd[len(sum):], uint32(len(pubKey)))
	return rd
}
