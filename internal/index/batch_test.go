package index

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"caltrain/internal/fingerprint"
	"caltrain/internal/kernel"
)

// batchCase builds a mixed batch: labels cycling through present and
// absent classes, varying k, and one dimension-mismatched query that
// must fail alone.
func batchCase(rng *rand.Rand, dim, n, classes int) (fs []fingerprint.Fingerprint, labels, ks []int) {
	for i := 0; i < n; i++ {
		d := dim
		if i == n/2 {
			d = dim + 1 // invalid: must error without poisoning the batch
		}
		fs = append(fs, randomFP(rng, d))
		labels = append(labels, i%(classes+1)) // classes+1 is absent
		ks = append(ks, 1+i%13)
	}
	return fs, labels, ks
}

// TestSearchBatchMatchesSearch asserts SearchBatch is observationally
// identical to per-query Search on both batch-capable backends: same
// matches in the same order, bit-identical distances, and per-query
// error independence.
func TestSearchBatchMatchesSearch(t *testing.T) {
	const dim, classes = 16, 5
	db := populatedDB(t, dim, 600, classes, 91)
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 8, Nprobe: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []fingerprint.BatchSearcher{NewFlat(db), ivf} {
		t.Run(backend.Kind(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(5, 17))
			fs, labels, ks := batchCase(rng, dim, 41, classes)
			results, errs := backend.SearchBatch(fs, labels, ks)
			if len(results) != len(fs) || len(errs) != len(fs) {
				t.Fatalf("SearchBatch returned %d results, %d errors for %d queries", len(results), len(errs), len(fs))
			}
			for i := range fs {
				want, wantErr := backend.Search(fs[i], labels[i], ks[i])
				if (errs[i] == nil) != (wantErr == nil) {
					t.Fatalf("query %d: batch err %v, search err %v", i, errs[i], wantErr)
				}
				if wantErr != nil {
					if errs[i].Error() != wantErr.Error() {
						t.Fatalf("query %d: batch err %q, search err %q", i, errs[i], wantErr)
					}
					continue
				}
				sameMatches(t, results[i], want)
				for j := range want {
					if math.Float64bits(results[i][j].Distance) != math.Float64bits(want[j].Distance) {
						t.Fatalf("query %d match %d: batch distance %v, search distance %v (bits differ)",
							i, j, results[i][j].Distance, want[j].Distance)
					}
				}
			}
		})
	}
}

// TestSearchBatchParallelPath drives a single-label bucket past
// parallelScanThreshold so the batched sweep takes the fan-out branch,
// and checks it still matches per-query Search exactly.
func TestSearchBatchParallelPath(t *testing.T) {
	const dim = 8
	db := populatedDB(t, dim, parallelScanThreshold+800, 1, 29)
	flat := NewFlat(db)
	rng := rand.New(rand.NewPCG(31, 7))
	var fs []fingerprint.Fingerprint
	var labels, ks []int
	for i := 0; i < 6; i++ {
		fs = append(fs, randomFP(rng, dim))
		labels = append(labels, 0)
		ks = append(ks, 5+i)
	}
	results, errs := flat.SearchBatch(fs, labels, ks)
	for i := range fs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := flat.Search(fs[i], labels[i], ks[i])
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, results[i], want)
	}
}

// TestSearchImplParity proves the bit-stability contract end to end:
// training an IVF index and querying both backends under each kernel
// implementation yields bit-identical matches — an index built on an
// AVX2 machine and served with the portable path (or vice versa) agrees
// exactly.
func TestSearchImplParity(t *testing.T) {
	impls := kernel.Impls()
	if len(impls) < 2 {
		t.Skipf("only %v registered; nothing to cross-check", kernel.Active())
	}
	const dim, classes = 16, 3
	db := populatedDB(t, dim, 500, classes, 77)
	rng := rand.New(rand.NewPCG(13, 3))
	queries := make([]fingerprint.Fingerprint, 12)
	for i := range queries {
		queries[i] = randomFP(rng, dim)
	}

	type shot struct {
		kind string
		got  [][]fingerprint.Match
	}
	var baseline []shot
	for implIdx, im := range impls {
		restore, err := kernel.SetActive(im.Name)
		if err != nil {
			t.Fatal(err)
		}
		ivf, err := TrainIVF(db, IVFOptions{Nlist: 8, Nprobe: 3, Seed: 4})
		if err != nil {
			restore()
			t.Fatal(err)
		}
		for bi, backend := range []fingerprint.Searcher{NewFlat(db), ivf} {
			got := make([][]fingerprint.Match, len(queries))
			for qi, q := range queries {
				got[qi], err = backend.Search(q, qi%classes, 10)
				if err != nil {
					restore()
					t.Fatal(err)
				}
			}
			if implIdx == 0 {
				baseline = append(baseline, shot{backend.Kind(), got})
				continue
			}
			want := baseline[bi]
			for qi := range queries {
				if len(got[qi]) != len(want.got[qi]) {
					t.Fatalf("%s impl %q: query %d returned %d matches, %q returned %d",
						want.kind, im.Name, qi, len(got[qi]), impls[0].Name, len(want.got[qi]))
				}
				for j := range got[qi] {
					g, w := got[qi][j], want.got[qi][j]
					if g.Index != w.Index || math.Float64bits(g.Distance) != math.Float64bits(w.Distance) {
						t.Fatalf("%s impl %q vs %q: query %d match %d: (%d, %x) vs (%d, %x)",
							want.kind, im.Name, impls[0].Name, qi, j,
							g.Index, math.Float64bits(g.Distance), w.Index, math.Float64bits(w.Distance))
					}
				}
			}
		}
		restore()
	}
}

// TestBatchQueryRace hammers the batched serving path while the backend
// is hot-swapped between Flat and IVF — the production rollover
// RunBatch must tolerate. Run under -race this guards the
// snapshot-the-searcher-once discipline in runBatchSearch.
func TestBatchQueryRace(t *testing.T) {
	const dim, classes = 8, 4
	db := populatedDB(t, dim, 2000, classes, 13)
	flat := NewFlat(db)
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	svc := fingerprint.NewSearcherService(flat)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 27))
			for {
				select {
				case <-stop:
					return
				default:
				}
				reqs := make([]fingerprint.QueryRequest, 24)
				for i := range reqs {
					reqs[i] = fingerprint.QueryRequest{
						Fingerprint: randomFP(rng, dim),
						Label:       i % classes,
						K:           1 + i%7,
					}
				}
				resp := svc.RunBatch(reqs)
				if len(resp.Results) != len(reqs) {
					t.Errorf("got %d results for %d queries", len(resp.Results), len(reqs))
					return
				}
				for i, r := range resp.Results {
					if r.Error != "" {
						t.Errorf("query %d failed: %s", i, r.Error)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			svc.SetSearcher(ivf)
		} else {
			svc.SetSearcher(flat)
		}
	}
	close(stop)
	wg.Wait()
}
