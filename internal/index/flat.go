package index

import (
	"fmt"
	"sync"

	"caltrain/internal/fingerprint"
)

// Flat is the exact backend: per-label contiguous vector storage scanned
// in full for every query. It returns results identical to DB.Query but
// replaces the full sort with a bounded top-k max-heap, compares squared
// distances (one sqrt per returned match instead of one per entry), and
// fans large classes out across cores.
//
// Flat implements Appender: the ingest path grows per-label buckets in
// place, and appended entries are immediately visible to searches with
// no recall loss (the scan stays exhaustive). Append and Search are
// serialized under an internal RWMutex; concurrent searches still run
// in parallel.
type Flat struct {
	mu      sync.RWMutex
	dim     int
	total   int
	buckets map[int]*bucket
}

// NewFlat builds an exact index from a snapshot of the linkage database.
// Entries added to the database afterwards are not visible unless fed in
// with Append.
func NewFlat(db *fingerprint.DB) *Flat {
	buckets, total, dim := buildBuckets(db)
	return &Flat{dim: dim, total: total, buckets: buckets}
}

// Dim returns the fingerprint dimensionality.
func (x *Flat) Dim() int { return x.dim }

// Len returns the number of indexed linkages.
func (x *Flat) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.total
}

// Kind implements Searcher.
func (x *Flat) Kind() string { return "flat" }

// Append implements Appender: it grows the label's bucket in place. The
// entry is visible to searches as soon as Append returns.
func (x *Flat) Append(dbIndex int, l fingerprint.Linkage) error {
	if len(l.F) != x.dim {
		return fmt.Errorf("%w: appended fingerprint has %d dims, index %d", fingerprint.ErrDimMismatch, len(l.F), x.dim)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	b := x.buckets[l.Y]
	if b == nil {
		b = &bucket{}
		x.buckets[l.Y] = b
	}
	b.appendEntry(int32(dbIndex), l)
	x.total++
	return nil
}

// VectorBytes reports the bytes of search geometry the index holds in
// memory — vector storage plus the per-entry database indices —
// excluding the provenance metadata (source, hash) every backend
// stores identically. For Flat this is essentially 4·dim bytes per
// entry; the IVFPQ backend's VectorBytes divides this by roughly
// 4·dim/M. The bench trajectory's bytes/entry rows and the
// TestIVFPQRecall memory assertion both compare backends through this
// method.
func (x *Flat) VectorBytes() int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var total int64
	for _, b := range x.buckets {
		total += 4 * int64(len(b.vecs))
		total += 4 * int64(len(b.idx))
	}
	return total
}

// Search returns the k nearest same-label entries to f, ascending by L2
// distance with ties broken by database index — exactly DB.Query's
// contract.
func (x *Flat) Search(f fingerprint.Fingerprint, label, k int) ([]fingerprint.Match, error) {
	if err := checkQuery(x.dim, f, k); err != nil {
		return nil, err
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	b, ok := x.buckets[label]
	if !ok {
		return nil, nil
	}
	return scanBucket(b, f, x.dim, k).matches(label), nil
}

// SearchBatch implements fingerprint.BatchSearcher: queries sharing a
// label are answered by ONE blocked sweep of the label's bucket (each
// cache-resident block of vectors is visited by every query before the
// next loads), so a batch of B same-label queries costs one pass of
// memory traffic instead of B. Results are identical to per-query
// Search calls; each query fails or succeeds independently.
func (x *Flat) SearchBatch(fs []fingerprint.Fingerprint, labels []int, ks []int) ([][]fingerprint.Match, []error) {
	results := make([][]fingerprint.Match, len(fs))
	errs := make([]error, len(fs))
	x.mu.RLock()
	defer x.mu.RUnlock()
	for label, qidx := range groupByLabel(x.dim, fs, labels, ks, errs) {
		b, ok := x.buckets[label]
		if !ok {
			continue // absent label: nil matches, nil error, like Search
		}
		if len(qidx) == 1 {
			i := qidx[0]
			results[i] = scanBucket(b, fs[i], x.dim, ks[i]).matches(label)
			continue
		}
		qs := make([]float32, 0, len(qidx)*x.dim)
		groupKs := make([]int, len(qidx))
		for j, i := range qidx {
			qs = append(qs, fs[i]...)
			groupKs[j] = ks[i]
		}
		heaps := batchScanBucket(b, qs, x.dim, groupKs)
		for j, i := range qidx {
			results[i] = heaps[j].matches(label)
		}
	}
	return results, errs
}
