package index

import (
	"caltrain/internal/fingerprint"
)

// Flat is the exact backend: per-label contiguous vector storage scanned
// in full for every query. It returns results identical to DB.Query but
// replaces the full sort with a bounded top-k max-heap, compares squared
// distances (one sqrt per returned match instead of one per entry), and
// fans large classes out across cores.
type Flat struct {
	dim     int
	total   int
	buckets map[int]*bucket
}

// NewFlat builds an exact index from a snapshot of the linkage database.
// Entries added to the database afterwards are not visible; rebuild and
// hot-swap (Service.SetSearcher) to pick them up.
func NewFlat(db *fingerprint.DB) *Flat {
	buckets, total, dim := buildBuckets(db)
	return &Flat{dim: dim, total: total, buckets: buckets}
}

// Dim returns the fingerprint dimensionality.
func (x *Flat) Dim() int { return x.dim }

// Len returns the number of indexed linkages.
func (x *Flat) Len() int { return x.total }

// Kind implements Searcher.
func (x *Flat) Kind() string { return "flat" }

// Search returns the k nearest same-label entries to f, ascending by L2
// distance with ties broken by database index — exactly DB.Query's
// contract.
func (x *Flat) Search(f fingerprint.Fingerprint, label, k int) ([]fingerprint.Match, error) {
	if err := checkQuery(x.dim, f, k); err != nil {
		return nil, err
	}
	b, ok := x.buckets[label]
	if !ok {
		return nil, nil
	}
	return scanBucket(b, f, x.dim, k).matches(label), nil
}
