package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"caltrain/internal/fingerprint"
)

func randomFP(rng *rand.Rand, dim int) fingerprint.Fingerprint {
	f := make(fingerprint.Fingerprint, dim)
	var s float64
	for i := range f {
		f[i] = float32(rng.NormFloat64())
		s += float64(f[i]) * float64(f[i])
	}
	// L2-normalize like real fingerprints.
	if s > 0 {
		inv := float32(1 / sqrt64(s))
		for i := range f {
			f[i] *= inv
		}
	}
	return f
}

func sqrt64(s float64) float64 {
	x := s
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + s/x)
	}
	return x
}

func populatedDB(t testing.TB, dim, n, classes int, seed uint64) *fingerprint.DB {
	t.Helper()
	db, err := fingerprint.NewDB(dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 1))
	for i := 0; i < n; i++ {
		var h [32]byte
		h[0], h[1] = byte(i), byte(i>>8)
		err := db.Add(fingerprint.Linkage{
			F: randomFP(rng, dim),
			Y: i % classes,
			S: []string{"alice", "bob", "carol"}[i%3],
			H: h,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func sameMatches(t *testing.T, got, want []fingerprint.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index {
			t.Fatalf("match %d: index %d, want %d", i, got[i].Index, want[i].Index)
		}
		if got[i].Source != want[i].Source || got[i].Label != want[i].Label || got[i].Hash != want[i].Hash {
			t.Fatalf("match %d: metadata mismatch: %+v vs %+v", i, got[i], want[i])
		}
		if d := got[i].Distance - want[i].Distance; d > 1e-9 || d < -1e-9 {
			t.Fatalf("match %d: distance %v, want %v", i, got[i].Distance, want[i].Distance)
		}
	}
}

// TestFlatMatchesExact: the heap-select flat index must return exactly
// what the reference linear scan returns, ordering and ties included.
func TestFlatMatchesExact(t *testing.T) {
	db := populatedDB(t, 8, 300, 5, 3)
	flat := NewFlat(db)
	if flat.Len() != db.Len() || flat.Dim() != db.Dim() {
		t.Fatalf("flat size %d/%d, want %d/%d", flat.Len(), flat.Dim(), db.Len(), db.Dim())
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		q := randomFP(rng, 8)
		label := int(seed % 6) // includes an absent label
		k := 1 + int(seed%15)
		want, err1 := db.Query(q, label, k)
		got, err2 := flat.Search(q, label, k)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Index != want[i].Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatParallelScanMatchesExact exercises the chunked parallel path
// (class size above parallelScanThreshold).
func TestFlatParallelScanMatchesExact(t *testing.T) {
	n := parallelScanThreshold*2 + 17
	db := populatedDB(t, 16, n, 1, 11)
	flat := NewFlat(db)
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 5; trial++ {
		q := randomFP(rng, 16)
		want, err := db.Query(q, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := flat.Search(q, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, got, want)
	}
}

func TestFlatValidation(t *testing.T) {
	db := populatedDB(t, 4, 10, 2, 5)
	flat := NewFlat(db)
	if _, err := flat.Search(make(fingerprint.Fingerprint, 3), 0, 5); !errors.Is(err, fingerprint.ErrDimMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if _, err := flat.Search(make(fingerprint.Fingerprint, 4), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if out, err := flat.Search(make(fingerprint.Fingerprint, 4), 99, 5); err != nil || len(out) != 0 {
		t.Fatalf("unknown class: %v %v", out, err)
	}
}

// TestIVFFullProbeMatchesExact: with nprobe = nlist every list is
// scanned, so IVF must agree with the exact scan bit-for-bit.
func TestIVFFullProbeMatchesExact(t *testing.T) {
	db := populatedDB(t, 8, 500, 3, 7)
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 8, Nprobe: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 10; trial++ {
		q := randomFP(rng, 8)
		label := trial % 3
		want, err := db.Query(q, label, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ivf.Search(q, label, 7)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, got, want)
	}
}

// TestIVFRecall asserts the acceptance bar: recall@10 ≥ 0.95 against the
// exact scan on the same data distribution the scaling bench uses
// (clustered embeddings, queries from the same mixture — a misprediction's
// fingerprint lives in the same embedding space as the training set).
func TestIVFRecall(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 5000
	}
	const nq = 50
	rng := rand.New(rand.NewPCG(15, 1))
	fps := SynthFingerprints(rng, n+nq, 64, 64, 0.15)
	db, err := fingerprint.NewDB(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fps[:n] {
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	ivf, err := TrainIVF(db, IVFOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(db)
	queries := fps[n:]
	labels := make([]int, len(queries))
	r, err := Recall(flat, ivf, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("IVF recall@10 = %.3f (n=%d, nprobe=%d)", r, n, ivf.Nprobe())
	// Deterministic given the seeds, and identical under every kernel
	// implementation (the bit-stability contract): measures 0.992 at
	// n=20000 and 0.990 under -short.
	if r < 0.98 {
		t.Fatalf("recall@10 = %.3f, want ≥ 0.98", r)
	}
	// Tightening nprobe trades recall for speed but must stay sane.
	ivf.SetNprobe(1)
	r1, err := Recall(flat, ivf, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 > r+1e-9 {
		t.Fatalf("nprobe=1 recall %.3f exceeds wider probe %.3f", r1, r)
	}
}

func TestIVFDegenerateTinyClass(t *testing.T) {
	db := populatedDB(t, 4, 6, 3, 21) // two entries per class
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 16, Nprobe: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := randomFP(rand.New(rand.NewPCG(5, 5)), 4)
	want, _ := db.Query(q, 1, 5)
	got, err := ivf.Search(q, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameMatches(t, got, want)
}

func TestTrainIVFEmptyDB(t *testing.T) {
	db, _ := fingerprint.NewDB(4)
	if _, err := TrainIVF(db, IVFOptions{}); err == nil {
		t.Fatal("empty DB accepted")
	}
}

func TestSaveLoadFlat(t *testing.T) {
	db := populatedDB(t, 8, 120, 4, 31)
	flat := NewFlat(db)
	var buf bytes.Buffer
	if err := Save(&buf, flat); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != "flat" || got.Len() != flat.Len() || got.Dim() != flat.Dim() {
		t.Fatalf("reloaded %s %d/%d", got.Kind(), got.Len(), got.Dim())
	}
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 8; trial++ {
		q := randomFP(rng, 8)
		want, _ := flat.Search(q, trial%4, 6)
		out, err := got.Search(q, trial%4, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, out, want)
	}
}

func TestSaveLoadIVF(t *testing.T) {
	db := populatedDB(t, 8, 400, 2, 33)
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 10, Nprobe: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ivf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	re, ok := got.(*IVF)
	if !ok {
		t.Fatalf("reloaded kind %s", got.Kind())
	}
	if re.Nprobe() != ivf.Nprobe() || re.Len() != ivf.Len() || re.Dim() != ivf.Dim() {
		t.Fatalf("reloaded params nprobe=%d len=%d dim=%d", re.Nprobe(), re.Len(), re.Dim())
	}
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 8; trial++ {
		q := randomFP(rng, 8)
		want, _ := ivf.Search(q, trial%2, 5)
		out, err := re.Search(q, trial%2, 5)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, out, want)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	db := populatedDB(t, 4, 20, 2, 41)
	var buf bytes.Buffer
	if err := Save(&buf, NewFlat(db)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated index accepted")
	}
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := Save(&buf, populatedDB(t, 4, 2, 1, 1)); err == nil {
		t.Fatal("serializing the linear DB should be unsupported")
	}
}

// TestLoadRejectsHostileHeader: implausible dim/count combinations must
// error, not panic or exhaust memory on make([]float32, n*dim).
func TestLoadRejectsHostileHeader(t *testing.T) {
	hostile := func(dim, nlabels, label, n uint32) []byte {
		b := []byte(ixMagic)
		b = append(b, ixVersion, kindFlat)
		b = binary.LittleEndian.AppendUint32(b, dim)
		b = binary.LittleEndian.AppendUint32(b, nlabels)
		b = binary.LittleEndian.AppendUint32(b, label)
		b = binary.LittleEndian.AppendUint32(b, n)
		return b
	}
	for name, raw := range map[string][]byte{
		"huge dim":       hostile(2_000_000_000, 1, 0, 10),
		"huge count":     hostile(64, 1, 0, 2_000_000_000),
		"overflow n*dim": hostile(1_000_000, 1, 0, 100_000_000),
		"zero dim":       hostile(0, 1, 0, 10),
	} {
		if _, err := Load(bytes.NewReader(raw)); err == nil {
			t.Fatalf("%s accepted", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
}

// TestLoadRejectsInconsistentIVF: structurally valid streams whose IVF
// metadata lies (nprobe 0, lists not partitioning the class) must error
// rather than load an index that silently serves wrong results.
func TestLoadRejectsInconsistentIVF(t *testing.T) {
	db := populatedDB(t, 4, 30, 1, 51)
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 3, Nprobe: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ivf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// The nprobe field sits right after the per-label entry section;
	// locate it by re-serializing with a different nprobe and diffing.
	ivf.SetNprobe(1)
	var buf2 bytes.Buffer
	if err := Save(&buf2, ivf); err != nil {
		t.Fatal(err)
	}
	raw2 := buf2.Bytes()
	off := -1
	for i := range raw {
		if raw[i] != raw2[i] {
			off = i
			break
		}
	}
	if off < 0 {
		t.Fatal("could not locate nprobe offset")
	}
	zeroed := append([]byte(nil), raw...)
	copy(zeroed[off:off+4], []byte{0, 0, 0, 0})
	if _, err := Load(bytes.NewReader(zeroed)); err == nil {
		t.Fatal("nprobe=0 accepted")
	}

	// Truncating one position from the last list leaves the class
	// under-covered; corrupt by rewriting the final list length.
	// Simpler: flip a stored position to duplicate another.
	dup := append([]byte(nil), raw...)
	copy(dup[len(dup)-4:], dup[len(dup)-8:len(dup)-4])
	if _, err := Load(bytes.NewReader(dup)); err == nil {
		t.Fatal("duplicated list position accepted")
	}
}

// TestIVFRecallAfterAppend is the online-ingest recall guard: appending
// 20% new vectors through Appender (no retrain) must keep recall@10 at
// or above 0.90 on the grown set, the drift gauge must cross the
// default retrain threshold's neighbourhood, and the retrain the ingest
// path would then trigger must restore ≥ 0.95.
func TestIVFRecallAfterAppend(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 3000
	}
	appendN := n / 5 // 20%
	const nq = 50
	rng := rand.New(rand.NewPCG(25, 1))
	fps := SynthFingerprints(rng, n+appendN+nq, 64, 64, 0.15)
	db, err := fingerprint.NewDB(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fps[:n] {
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	ivf, err := TrainIVF(db, IVFOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}

	// Online appends: DB and index grow together, quantizer untouched.
	for _, f := range fps[n : n+appendN] {
		idx := db.Len()
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "new"}); err != nil {
			t.Fatal(err)
		}
		if err := ivf.Append(idx, fingerprint.Linkage{F: f, Y: 0, S: "new"}); err != nil {
			t.Fatal(err)
		}
	}
	if ivf.Len() != n+appendN {
		t.Fatalf("ivf len %d, want %d", ivf.Len(), n+appendN)
	}
	wantDrift := float64(appendN) / float64(n+appendN)
	if d := ivf.Drift(); d < wantDrift-1e-9 || d > wantDrift+1e-9 {
		t.Fatalf("drift %v, want %v", d, wantDrift)
	}

	flat := NewFlat(db) // exact reference over the grown database
	queries := fps[n+appendN:]
	labels := make([]int, len(queries))
	r, err := Recall(flat, ivf, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("post-append recall@10 = %.3f (n=%d +%d appended, nprobe=%d)", r, n, appendN, ivf.Nprobe())
	// Measures 1.000 at n=10000 and 0.990 under -short, on every kernel.
	if r < 0.98 {
		t.Fatalf("post-append recall@10 = %.3f, want ≥ 0.98", r)
	}

	// The drift threshold crossed (0.167 vs the ingest default 0.25
	// scaled — here we assert the mechanism, not the constant): a
	// retrain over the grown database restores full recall.
	fresh, err := TrainIVF(db, IVFOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d := fresh.Drift(); d != 0 {
		t.Fatalf("fresh index drift %v, want 0", d)
	}
	r2, err := Recall(flat, fresh, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("post-retrain recall@10 = %.3f", r2)
	// Measures 1.000 at n=10000 and 0.982 under -short, on every kernel.
	if r2 < 0.97 {
		t.Fatalf("post-retrain recall@10 = %.3f, want ≥ 0.97", r2)
	}
}

// TestAppendSearchRace hammers Append and Search concurrently on every
// appendable backend — the interleaving the online ingest path
// creates, run under -race in CI.
func TestAppendSearchRace(t *testing.T) {
	db := populatedDB(t, 8, 400, 4, 61)
	ivf, err := TrainIVF(db, IVFOptions{Nlist: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ivfpq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 8, Seed: 8}, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Appender{NewFlat(db), ivf, ivfpq} {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(g), 9))
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := randomFP(rng, 8)
					if _, err := backend.Search(q, g%4, 5); err != nil {
						t.Error(err)
						return
					}
					backend.Len()
				}
			}(g)
		}
		rng := rand.New(rand.NewPCG(99, 9))
		base := db.Len()
		for i := 0; i < 200; i++ {
			l := fingerprint.Linkage{F: randomFP(rng, 8), Y: i % 6, S: "r"} // includes brand-new labels 4,5
			if err := backend.Append(base+i, l); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		wg.Wait()
		if backend.Len() != base+200 {
			t.Fatalf("%s: len %d, want %d", backend.Kind(), backend.Len(), base+200)
		}
	}
}

// TestAppendMatchesRebuild: an appended Flat index must agree
// bit-for-bit with one rebuilt from scratch over the same database —
// appends lose nothing and corrupt nothing.
func TestAppendMatchesRebuild(t *testing.T) {
	db := populatedDB(t, 8, 150, 3, 71)
	flat := NewFlat(db)
	rng := rand.New(rand.NewPCG(31, 3))
	for i := 0; i < 60; i++ {
		l := fingerprint.Linkage{F: randomFP(rng, 8), Y: i % 5, S: "app"}
		idx := db.Len()
		if err := db.Add(l); err != nil {
			t.Fatal(err)
		}
		if err := flat.Append(idx, l); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt := NewFlat(db)
	for trial := 0; trial < 20; trial++ {
		q := randomFP(rng, 8)
		label := trial % 6
		want, err := rebuilt.Search(q, label, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := flat.Search(q, label, 7)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, got, want)
	}
	// Appender dimension validation.
	if err := flat.Append(db.Len(), fingerprint.Linkage{F: make(fingerprint.Fingerprint, 3)}); !errors.Is(err, fingerprint.ErrDimMismatch) {
		t.Fatalf("bad append: %v", err)
	}
}
