package index

import (
	"math/rand/v2"

	"caltrain/internal/kernel"
)

// Product quantization: each dim-length residual splits into m
// contiguous dsub-length subvectors, and each subquantizer j gets its
// own k-means codebook of pqKs centroids trained on the j-th subvector
// of every training residual. A vector's code is then m uint8 centroid
// indices — m bytes instead of 4·dim — and a query scores codes through
// an ADC lookup table (kernel.ADCScan) instead of touching any float
// vector. Training residuals (vector minus its coarse centroid) rather
// than raw vectors keeps the quantization error proportional to the
// within-list spread, the standard IVFPQ construction.

// pqKs is the per-subquantizer codebook size, fixed by the kernel's ADC
// contract (one code element = one uint8).
const pqKs = kernel.ADCKs

// pqCodebook holds one label's trained subquantizer centroids.
type pqCodebook struct {
	m, dsub   int
	centroids []float32 // m × pqKs × dsub, row-major by subquantizer
}

// sub returns subquantizer j's centroid table (pqKs rows of dsub).
func (cb *pqCodebook) sub(j int) []float32 {
	return cb.centroids[j*pqKs*cb.dsub : (j+1)*pqKs*cb.dsub]
}

// zeroCodebook is the degenerate codebook for a class born from a
// single append: every centroid is the origin, so every residual
// encodes to code 0 and the ADC table cell is the residual's own
// squared subvector norm — the scan degrades to the exact
// query-to-centroid distance instead of returning garbage.
func zeroCodebook(m, dsub int) *pqCodebook {
	return &pqCodebook{m: m, dsub: dsub, centroids: make([]float32, m*pqKs*dsub)}
}

// trainPQ runs k-means per subquantizer over a sample of the n×dim
// residual matrix. Training is deterministic for a fixed rng state and
// input (the kernel's bit-stability contract makes the assignment step
// reproducible across hardware paths).
func trainPQ(res []float32, n, dim, m, iters, sampleCap int, rng *rand.Rand) *pqCodebook {
	dsub := dim / m
	cb := &pqCodebook{m: m, dsub: dsub, centroids: make([]float32, m*pqKs*dsub)}
	sampleN := min(n, sampleCap)
	perm := rng.Perm(n)[:sampleN]

	// Scratch shared across subquantizers: the sampled subvectors packed
	// contiguously, their identity position list, and per-iteration
	// assignment/update state.
	sub := make([]float32, sampleN*dsub)
	all := make([]int32, sampleN)
	for i := range all {
		all[i] = int32(i)
	}
	assign := make([]int32, sampleN)
	counts := make([]int, pqKs)
	sums := make([]float64, pqKs*dsub)

	for j := 0; j < m; j++ {
		for i, p := range perm {
			copy(sub[i*dsub:(i+1)*dsub], res[p*dim+j*dsub:p*dim+(j+1)*dsub])
		}
		cents := cb.sub(j)
		// Init from the shuffled sample; with fewer than pqKs samples the
		// duplicates are harmless (strict-< argmin always picks the first).
		for k := 0; k < pqKs; k++ {
			copy(cents[k*dsub:(k+1)*dsub], sub[(k%sampleN)*dsub:(k%sampleN+1)*dsub])
		}
		for it := 0; it < iters; it++ {
			assignNearest(sub, dsub, all, cents, pqKs, assign)
			for i := range sums {
				sums[i] = 0
			}
			for i := range counts {
				counts[i] = 0
			}
			for si, ci := range assign {
				counts[ci]++
				v := sub[si*dsub : (si+1)*dsub]
				s := sums[int(ci)*dsub : (int(ci)+1)*dsub]
				for d, vd := range v {
					s[d] += float64(vd)
				}
			}
			for ci := 0; ci < pqKs; ci++ {
				if counts[ci] == 0 {
					p := rng.IntN(sampleN)
					copy(cents[ci*dsub:(ci+1)*dsub], sub[p*dsub:(p+1)*dsub])
					continue
				}
				inv := 1 / float64(counts[ci])
				cen := cents[ci*dsub : (ci+1)*dsub]
				s := sums[ci*dsub : (ci+1)*dsub]
				for d := range cen {
					cen[d] = float32(s[d] * inv)
				}
			}
		}
	}
	return cb
}

// encode writes the m-byte code of one dim-length residual: per
// subquantizer, the index of the nearest centroid (strict-< argmin, so
// ties are deterministic). d2s is a ≥pqKs scratch.
func (cb *pqCodebook) encode(res []float32, code []byte, d2s []float64) {
	for j := 0; j < cb.m; j++ {
		r := res[j*cb.dsub : (j+1)*cb.dsub]
		code[j] = byte(nearestCentroid(r, cb.sub(j), cb.dsub, pqKs, d2s))
	}
}

// table fills one query's ADC lookup table for a dim-length residual:
// tab[j*pqKs+k] is the squared kernel distance between the query
// residual's j-th subvector and centroid k of subquantizer j. d2s is a
// ≥pqKs scratch.
func (cb *pqCodebook) table(res []float32, tab []float32, d2s []float64) {
	for j := 0; j < cb.m; j++ {
		r := res[j*cb.dsub : (j+1)*cb.dsub]
		kernel.DistanceRows(r, cb.sub(j), cb.dsub, d2s[:pqKs])
		for k, d := range d2s[:pqKs] {
			tab[j*pqKs+k] = float32(d)
		}
	}
}
