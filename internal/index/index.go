// Package index provides the nearest-neighbour index backends behind
// CalTrain's accountability query service (§IV-C). The linkage database
// (internal/fingerprint.DB) answers queries with an exact per-label linear
// scan; at production scale — millions of fingerprints, heavy query
// traffic — that path needs a real index.
//
// Two backends implement fingerprint.Searcher:
//
//   - Flat: exact. Contiguous per-label vector storage, chunked parallel
//     scan, squared-distance comparisons with a bounded top-k max-heap and
//     one final sqrt per returned match. Same results as DB.Query, much
//     less work per query.
//   - IVF: approximate. A per-label k-means coarse quantizer partitions
//     each class into nlist inverted lists; queries scan only the nprobe
//     closest lists. Recall is tunable via nprobe and measurable with
//     Recall.
//
// Both serialize with Save/Load so a built index persists and reloads
// alongside LinkageDB.Save.
package index

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"caltrain/internal/fingerprint"
	"caltrain/internal/kernel"
)

// Searcher is re-exported for convenience; the canonical definition lives
// in internal/fingerprint so the HTTP service can accept any backend
// without an import cycle.
type Searcher = fingerprint.Searcher

// Appender is the optional write extension of a Searcher backend: it
// absorbs one new linkage without a rebuild, making the entry visible to
// subsequent searches. dbIndex is the entry's position in the backing
// linkage database, so Match.Index values stay consistent between the
// index and DB.Query. Flat grows its per-label bucket in place (still
// exact); IVF assigns the vector to its label's nearest centroid (exact
// within the probed lists, but the coarse quantizer is not retrained —
// see Drifter). Both backends implement it; implementations serialize
// Append against Search internally.
type Appender interface {
	Searcher
	Append(dbIndex int, l fingerprint.Linkage) error
}

// Drifter is implemented by appendable backends whose search quality
// decays as appends accumulate. Drift is the fraction of entries
// appended since the backend was (re)trained, in [0, 1]; the ingest
// path retrains and hot-swaps the backend once drift crosses its
// configured threshold. Flat never drifts (it stays exact) and does not
// implement the interface.
type Drifter interface {
	Drift() float64
}

// bucket is one class label's slice of the index: vectors stored
// contiguously for cache-friendly scanning, provenance kept parallel.
type bucket struct {
	n    int
	vecs []float32 // n*dim, row-major
	idx  []int32   // database indices
	src  []string
	hash [][32]byte
}

// appendEntry grows the bucket by one linkage and returns its position.
// Callers hold the owning index's write lock.
func (b *bucket) appendEntry(dbIdx int32, l fingerprint.Linkage) int32 {
	pos := int32(b.n)
	b.vecs = append(b.vecs, l.F...)
	b.idx = append(b.idx, dbIdx)
	b.src = append(b.src, l.S)
	b.hash = append(b.hash, l.H)
	b.n++
	return pos
}

// buildBuckets snapshots the database into per-label buckets.
func buildBuckets(db *fingerprint.DB) (map[int]*bucket, int, int) {
	dim := db.Dim()
	buckets := make(map[int]*bucket)
	total := 0
	for _, y := range db.Labels() {
		idxs := db.ClassIndex(y)
		b := &bucket{
			n:    len(idxs),
			vecs: make([]float32, len(idxs)*dim),
			idx:  make([]int32, len(idxs)),
			src:  make([]string, len(idxs)),
			hash: make([][32]byte, len(idxs)),
		}
		for i, dbIdx := range idxs {
			e := db.Entry(dbIdx)
			copy(b.vecs[i*dim:(i+1)*dim], e.F)
			b.idx[i] = int32(dbIdx)
			b.src[i] = e.S
			b.hash[i] = e.H
		}
		buckets[y] = b
		total += b.n
	}
	return buckets, total, dim
}

// cand is one scan candidate: squared distance plus position within the
// bucket. The sqrt is deferred until the final top-k is known.
type cand struct {
	d2  float64
	pos int32
}

// better reports whether a ranks strictly before b: smaller squared
// distance, ties broken by database index (bucket positions are in
// insertion order, so position order is index order).
func (b *bucket) better(a, c cand) bool {
	if a.d2 != c.d2 {
		return a.d2 < c.d2
	}
	return a.pos < c.pos
}

// topK is a bounded max-heap of the k best candidates seen so far;
// h[0] is the worst kept candidate, so one comparison rejects most of the
// scan without any heap movement.
type topK struct {
	b *bucket
	k int
	h []cand
}

func newTopK(b *bucket, k int) *topK {
	return &topK{b: b, k: k, h: make([]cand, 0, k)}
}

// worse is the heap ordering: the root holds the candidate that ranks
// last.
func (t *topK) worse(a, c cand) bool { return t.b.better(c, a) }

// threshold returns the current worst kept squared distance, or +Inf
// while the heap is not yet full.
func (t *topK) threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].d2
}

func (t *topK) consider(c cand) {
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		t.siftUp(len(t.h) - 1)
		return
	}
	if t.b.better(c, t.h[0]) {
		t.h[0] = c
		t.siftDown(0)
	}
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(t.h[i], t.h[p]) {
			return
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && t.worse(t.h[l], t.h[w]) {
			w = l
		}
		if r < n && t.worse(t.h[r], t.h[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.h[i], t.h[w] = t.h[w], t.h[i]
		i = w
	}
}

// merge folds another heap over the same bucket into t.
func (t *topK) merge(o *topK) {
	for _, c := range o.h {
		t.consider(c)
	}
}

// matches materializes the heap as sorted fingerprint.Match results,
// taking the one sqrt per returned row.
func (t *topK) matches(label int) []fingerprint.Match {
	cands := append([]cand(nil), t.h...)
	sort.Slice(cands, func(a, b int) bool { return t.b.better(cands[a], cands[b]) })
	out := make([]fingerprint.Match, len(cands))
	for i, c := range cands {
		out[i] = fingerprint.Match{
			Index:    int(t.b.idx[c.pos]),
			Source:   t.b.src[c.pos],
			Label:    label,
			Hash:     t.b.hash[c.pos],
			Distance: math.Sqrt(c.d2),
		}
	}
	return out
}

// scanBlock is how many candidate distances one kernel call computes
// before the heap consumes them: big enough to amortize dispatch, small
// enough that the scratch stays on the stack.
const scanBlock = 256

// scanRange feeds bucket positions [lo,hi) through the heap, computing
// distances a block at a time via the vectorized kernel.
func scanRange(t *topK, q []float32, dim int, lo, hi int32) {
	vecs := t.b.vecs
	var buf [scanBlock]float64
	for r := int(lo); r < int(hi); {
		n := min(scanBlock, int(hi)-r)
		kernel.DistanceRows(q, vecs[r*dim:(r+n)*dim], dim, buf[:n])
		for i := 0; i < n; i++ {
			// Equal distance can still win on the index tie-break, so <=.
			if d2 := buf[i]; d2 <= t.threshold() {
				t.consider(cand{d2: d2, pos: int32(r + i)})
			}
		}
		r += n
	}
}

// parallelScanThreshold is the work-item count above which a scan fans
// out across GOMAXPROCS workers.
const parallelScanThreshold = 8192

// parallelChunks splits [0, n) into one contiguous chunk per worker and
// runs fn on each concurrently; below parallelScanThreshold it runs
// fn(0, n) inline.
func parallelChunks(n int, fn func(lo, hi int)) {
	if n < parallelScanThreshold {
		fn(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelTopK runs scan over chunks of [0, n), each worker with a
// private heap over b, and merges them into one result heap.
func parallelTopK(b *bucket, k, n int, scan func(t *topK, lo, hi int)) *topK {
	final := newTopK(b, k)
	if n < parallelScanThreshold {
		scan(final, 0, n)
		return final
	}
	var mu sync.Mutex
	parallelChunks(n, func(lo, hi int) {
		t := newTopK(b, k)
		scan(t, lo, hi)
		mu.Lock()
		final.merge(t)
		mu.Unlock()
	})
	return final
}

// scanBucket runs the (possibly parallel) top-k scan of one bucket over
// the positions [0, n).
func scanBucket(b *bucket, q []float32, dim, k int) *topK {
	return parallelTopK(b, k, b.n, func(t *topK, lo, hi int) {
		scanRange(t, q, dim, int32(lo), int32(hi))
	})
}

// batchSweep feeds bucket rows [lo,hi) through one heap per query,
// visiting each block of vectors with every query while it is
// cache-resident — the whole group costs one pass of memory traffic.
func batchSweep(heaps []*topK, qs []float32, dim int, b *bucket, lo, hi int) {
	nq := len(heaps)
	buf := make([]float64, nq*scanBlock)
	for r0 := lo; r0 < hi; {
		rows := min(scanBlock, hi-r0)
		kernel.DistanceBatch(qs, b.vecs[r0*dim:(r0+rows)*dim], dim, buf[:nq*rows])
		for qi, t := range heaps {
			row := buf[qi*rows : (qi+1)*rows]
			for i, d2 := range row {
				if d2 <= t.threshold() {
					t.consider(cand{d2: d2, pos: int32(r0 + i)})
				}
			}
		}
		r0 += rows
	}
}

// batchScanBucket runs one blocked sweep of b for a group of queries
// sharing a label (qs is len(ks) concatenated dim-length queries),
// returning one result heap per query. Results are identical to
// per-query scanBucket calls: same kernel distances, same (d2, pos)
// tie-break, only the traversal is shared. Large buckets fan out across
// cores with per-worker heap sets merged at the end.
func batchScanBucket(b *bucket, qs []float32, dim int, ks []int) []*topK {
	finals := make([]*topK, len(ks))
	for i, k := range ks {
		finals[i] = newTopK(b, k)
	}
	if b.n < parallelScanThreshold {
		batchSweep(finals, qs, dim, b, 0, b.n)
		return finals
	}
	var mu sync.Mutex
	parallelChunks(b.n, func(lo, hi int) {
		locals := make([]*topK, len(ks))
		for i, k := range ks {
			locals[i] = newTopK(b, k)
		}
		batchSweep(locals, qs, dim, b, lo, hi)
		mu.Lock()
		for i := range finals {
			finals[i].merge(locals[i])
		}
		mu.Unlock()
	})
	return finals
}

// groupByLabel validates each query and groups the valid ones by label,
// recording per-query validation errors in errs. Shared by both
// backends' SearchBatch implementations.
func groupByLabel(dim int, fs []fingerprint.Fingerprint, labels []int, ks []int, errs []error) map[int][]int {
	groups := make(map[int][]int)
	for i := range fs {
		if err := checkQuery(dim, fs[i], ks[i]); err != nil {
			errs[i] = err
			continue
		}
		groups[labels[i]] = append(groups[labels[i]], i)
	}
	return groups
}

func checkQuery(dim int, f fingerprint.Fingerprint, k int) error {
	if len(f) != dim {
		return fmt.Errorf("%w: query has %d dims, index %d", fingerprint.ErrDimMismatch, len(f), dim)
	}
	if k <= 0 {
		return fmt.Errorf("index: k must be positive, got %d", k)
	}
	return nil
}
