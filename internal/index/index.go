// Package index provides the nearest-neighbour index backends behind
// CalTrain's accountability query service (§IV-C). The linkage database
// (internal/fingerprint.DB) answers queries with an exact per-label linear
// scan; at production scale — millions of fingerprints, heavy query
// traffic — that path needs a real index.
//
// Two backends implement fingerprint.Searcher:
//
//   - Flat: exact. Contiguous per-label vector storage, chunked parallel
//     scan, squared-distance comparisons with a bounded top-k max-heap and
//     one final sqrt per returned match. Same results as DB.Query, much
//     less work per query.
//   - IVF: approximate. A per-label k-means coarse quantizer partitions
//     each class into nlist inverted lists; queries scan only the nprobe
//     closest lists. Recall is tunable via nprobe and measurable with
//     Recall.
//
// Both serialize with Save/Load so a built index persists and reloads
// alongside LinkageDB.Save.
package index

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"caltrain/internal/fingerprint"
)

// Searcher is re-exported for convenience; the canonical definition lives
// in internal/fingerprint so the HTTP service can accept any backend
// without an import cycle.
type Searcher = fingerprint.Searcher

// Appender is the optional write extension of a Searcher backend: it
// absorbs one new linkage without a rebuild, making the entry visible to
// subsequent searches. dbIndex is the entry's position in the backing
// linkage database, so Match.Index values stay consistent between the
// index and DB.Query. Flat grows its per-label bucket in place (still
// exact); IVF assigns the vector to its label's nearest centroid (exact
// within the probed lists, but the coarse quantizer is not retrained —
// see Drifter). Both backends implement it; implementations serialize
// Append against Search internally.
type Appender interface {
	Searcher
	Append(dbIndex int, l fingerprint.Linkage) error
}

// Drifter is implemented by appendable backends whose search quality
// decays as appends accumulate. Drift is the fraction of entries
// appended since the backend was (re)trained, in [0, 1]; the ingest
// path retrains and hot-swaps the backend once drift crosses its
// configured threshold. Flat never drifts (it stays exact) and does not
// implement the interface.
type Drifter interface {
	Drift() float64
}

// bucket is one class label's slice of the index: vectors stored
// contiguously for cache-friendly scanning, provenance kept parallel.
type bucket struct {
	n    int
	vecs []float32 // n*dim, row-major
	idx  []int32   // database indices
	src  []string
	hash [][32]byte
}

// appendEntry grows the bucket by one linkage and returns its position.
// Callers hold the owning index's write lock.
func (b *bucket) appendEntry(dbIdx int32, l fingerprint.Linkage) int32 {
	pos := int32(b.n)
	b.vecs = append(b.vecs, l.F...)
	b.idx = append(b.idx, dbIdx)
	b.src = append(b.src, l.S)
	b.hash = append(b.hash, l.H)
	b.n++
	return pos
}

// buildBuckets snapshots the database into per-label buckets.
func buildBuckets(db *fingerprint.DB) (map[int]*bucket, int, int) {
	dim := db.Dim()
	buckets := make(map[int]*bucket)
	total := 0
	for _, y := range db.Labels() {
		idxs := db.ClassIndex(y)
		b := &bucket{
			n:    len(idxs),
			vecs: make([]float32, len(idxs)*dim),
			idx:  make([]int32, len(idxs)),
			src:  make([]string, len(idxs)),
			hash: make([][32]byte, len(idxs)),
		}
		for i, dbIdx := range idxs {
			e := db.Entry(dbIdx)
			copy(b.vecs[i*dim:(i+1)*dim], e.F)
			b.idx[i] = int32(dbIdx)
			b.src[i] = e.S
			b.hash[i] = e.H
		}
		buckets[y] = b
		total += b.n
	}
	return buckets, total, dim
}

// cand is one scan candidate: squared distance plus position within the
// bucket. The sqrt is deferred until the final top-k is known.
type cand struct {
	d2  float64
	pos int32
}

// better reports whether a ranks strictly before b: smaller squared
// distance, ties broken by database index (bucket positions are in
// insertion order, so position order is index order).
func (b *bucket) better(a, c cand) bool {
	if a.d2 != c.d2 {
		return a.d2 < c.d2
	}
	return a.pos < c.pos
}

// topK is a bounded max-heap of the k best candidates seen so far;
// h[0] is the worst kept candidate, so one comparison rejects most of the
// scan without any heap movement.
type topK struct {
	b *bucket
	k int
	h []cand
}

func newTopK(b *bucket, k int) *topK {
	return &topK{b: b, k: k, h: make([]cand, 0, k)}
}

// worse is the heap ordering: the root holds the candidate that ranks
// last.
func (t *topK) worse(a, c cand) bool { return t.b.better(c, a) }

// threshold returns the current worst kept squared distance, or +Inf
// while the heap is not yet full.
func (t *topK) threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].d2
}

func (t *topK) consider(c cand) {
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		t.siftUp(len(t.h) - 1)
		return
	}
	if t.b.better(c, t.h[0]) {
		t.h[0] = c
		t.siftDown(0)
	}
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(t.h[i], t.h[p]) {
			return
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && t.worse(t.h[l], t.h[w]) {
			w = l
		}
		if r < n && t.worse(t.h[r], t.h[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.h[i], t.h[w] = t.h[w], t.h[i]
		i = w
	}
}

// merge folds another heap over the same bucket into t.
func (t *topK) merge(o *topK) {
	for _, c := range o.h {
		t.consider(c)
	}
}

// matches materializes the heap as sorted fingerprint.Match results,
// taking the one sqrt per returned row.
func (t *topK) matches(label int) []fingerprint.Match {
	cands := append([]cand(nil), t.h...)
	sort.Slice(cands, func(a, b int) bool { return t.b.better(cands[a], cands[b]) })
	out := make([]fingerprint.Match, len(cands))
	for i, c := range cands {
		out[i] = fingerprint.Match{
			Index:    int(t.b.idx[c.pos]),
			Source:   t.b.src[c.pos],
			Label:    label,
			Hash:     t.b.hash[c.pos],
			Distance: math.Sqrt(c.d2),
		}
	}
	return out
}

// sqDist returns the squared L2 distance between q and the dim-length
// vector at v.
func sqDist(q []float32, v []float32) float64 {
	var s float64
	for j := range q {
		d := float64(q[j]) - float64(v[j])
		s += d * d
	}
	return s
}

// scanRange feeds bucket positions [lo,hi) through the heap.
func scanRange(t *topK, q []float32, dim int, lo, hi int32) {
	vecs := t.b.vecs
	for i := lo; i < hi; i++ {
		d2 := sqDist(q, vecs[int(i)*dim:int(i+1)*dim])
		// Equal distance can still win on the index tie-break, so <=.
		if d2 <= t.threshold() {
			t.consider(cand{d2: d2, pos: i})
		}
	}
}

// parallelScanThreshold is the work-item count above which a scan fans
// out across GOMAXPROCS workers.
const parallelScanThreshold = 8192

// parallelChunks splits [0, n) into one contiguous chunk per worker and
// runs fn on each concurrently; below parallelScanThreshold it runs
// fn(0, n) inline.
func parallelChunks(n int, fn func(lo, hi int)) {
	if n < parallelScanThreshold {
		fn(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelTopK runs scan over chunks of [0, n), each worker with a
// private heap over b, and merges them into one result heap.
func parallelTopK(b *bucket, k, n int, scan func(t *topK, lo, hi int)) *topK {
	final := newTopK(b, k)
	if n < parallelScanThreshold {
		scan(final, 0, n)
		return final
	}
	var mu sync.Mutex
	parallelChunks(n, func(lo, hi int) {
		t := newTopK(b, k)
		scan(t, lo, hi)
		mu.Lock()
		final.merge(t)
		mu.Unlock()
	})
	return final
}

// scanBucket runs the (possibly parallel) top-k scan of one bucket over
// the positions [0, n).
func scanBucket(b *bucket, q []float32, dim, k int) *topK {
	return parallelTopK(b, k, b.n, func(t *topK, lo, hi int) {
		scanRange(t, q, dim, int32(lo), int32(hi))
	})
}

func checkQuery(dim int, f fingerprint.Fingerprint, k int) error {
	if len(f) != dim {
		return fmt.Errorf("%w: query has %d dims, index %d", fingerprint.ErrDimMismatch, len(f), dim)
	}
	if k <= 0 {
		return fmt.Errorf("index: k must be positive, got %d", k)
	}
	return nil
}
