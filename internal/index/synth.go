package index

import (
	"math"
	"math/rand/v2"

	"caltrain/internal/fingerprint"
)

// SynthFingerprints generates n L2-normalized synthetic fingerprints
// drawn from a mixture of modes on the unit sphere — the geometry of real
// penultimate-layer embeddings, where instances of one class concentrate
// around a handful of modes (see Figure 7's LLE clusters). sigma is the
// per-coordinate noise around a mode before renormalization.
//
// Recall measurements and the scaling benches use this as the common
// workload so flat and IVF are compared on representative data.
func SynthFingerprints(rng *rand.Rand, n, dim, modes int, sigma float64) []fingerprint.Fingerprint {
	if modes < 1 {
		modes = 1
	}
	centers := make([]float32, modes*dim)
	for m := 0; m < modes; m++ {
		c := centers[m*dim : (m+1)*dim]
		var s float64
		for j := range c {
			c[j] = float32(rng.NormFloat64())
			s += float64(c[j]) * float64(c[j])
		}
		inv := float32(1 / math.Sqrt(s))
		for j := range c {
			c[j] *= inv
		}
	}
	out := make([]fingerprint.Fingerprint, n)
	for i := range out {
		c := centers[rng.IntN(modes)*dim:]
		f := make(fingerprint.Fingerprint, dim)
		var s float64
		for j := range f {
			f[j] = c[j] + float32(sigma*rng.NormFloat64())
			s += float64(f[j]) * float64(f[j])
		}
		if s > 0 {
			inv := float32(1 / math.Sqrt(s))
			for j := range f {
				f[j] *= inv
			}
		}
		out[i] = f
	}
	return out
}
