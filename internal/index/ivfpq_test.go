package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"caltrain/internal/fingerprint"
)

// linkedFingerprints builds the two-level workload accountability
// queries actually see: class modes (as in SynthFingerprints)
// containing tight linkage groups — each group is a cluster of
// near-duplicate fingerprints tracing back to one source, the
// structure a duplicated or poisoned training set induces. Group
// centers are drawn from a modes-mode mixture with per-coordinate
// noise sigma; each of the n outputs jitters around its group's
// center (group i%ngroups) by jitter << sigma and is re-normalized.
// A query drawn as a fresh group member has its group siblings as
// exact nearest neighbours, separated from the rest of the mode by
// the sigma-scale spread — ground truth with a real margin, unlike a
// unimodal cloud where the "true" top-10 is an arbitrary sample of
// near-equidistant points.
func linkedFingerprints(rng *rand.Rand, n, dim, modes, groupSize int, sigma, jitter float64) []fingerprint.Fingerprint {
	ngroups := (n + groupSize - 1) / groupSize
	centers := SynthFingerprints(rng, ngroups, dim, modes, sigma)
	fps := make([]fingerprint.Fingerprint, n)
	for i := range fps {
		c := centers[i%ngroups]
		f := make(fingerprint.Fingerprint, dim)
		var s float64
		for j := range f {
			f[j] = c[j] + float32(jitter*rng.NormFloat64())
			s += float64(f[j]) * float64(f[j])
		}
		inv := float32(1 / math.Sqrt(s))
		for j := range f {
			f[j] *= inv
		}
		fps[i] = f
	}
	return fps
}

// TestIVFPQRecall is the acceptance bar for the product-quantized
// backend: at 100k entries (20k under -short), recall@10 against the
// exact scan stays at or above 0.90 while the index holds at most 1/8
// of Flat's float32 footprint — the memory saving is the whole point of
// storing M-byte codes instead of dim×4-byte vectors. The workload is
// the linkage-group distribution the system is built for (queries
// retrieve a group of near-duplicate fingerprints); the memory bound
// forces M = dim/4 subquantizers (2 bits per dimension), at which an
// unstructured unimodal cloud has no recoverable top-10 — the exact
// neighbour set there is an arbitrary sample of near-equidistant
// points below the quantization noise floor.
func TestIVFPQRecall(t *testing.T) {
	n := 100000
	if testing.Short() {
		n = 20000
	}
	const nq = 50
	rng := rand.New(rand.NewPCG(15, 1))
	fps := linkedFingerprints(rng, n+nq, 64, 64, 12, 0.15, 0.05)
	db, err := fingerprint.NewDB(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fps[:n] {
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(db)

	pqBytes, flatBytes := pq.VectorBytes(), flat.VectorBytes()
	t.Logf("memory: ivfpq %d bytes (%.1f/entry), flat %d bytes (%.1f/entry), ratio %.3f",
		pqBytes, float64(pqBytes)/float64(n), flatBytes, float64(flatBytes)/float64(n),
		float64(pqBytes)/float64(flatBytes))
	if pqBytes > flatBytes/8 {
		t.Fatalf("ivfpq holds %d bytes, more than 1/8 of flat's %d", pqBytes, flatBytes)
	}

	queries := fps[n:]
	labels := make([]int, len(queries))
	r, err := Recall(flat, pq, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("IVFPQ recall@10 = %.3f (n=%d, m=%d, nprobe=%d)", r, n, pq.M(), pq.Nprobe())
	// Deterministic given the seeds and identical under every kernel
	// implementation (the ADC bit-stability contract).
	if r < 0.90 {
		t.Fatalf("recall@10 = %.3f, want ≥ 0.90", r)
	}
	// Widening the probe ray can only help; tightening it must degrade
	// gracefully, not catastrophically.
	pq.SetNprobe(1)
	r1, err := Recall(flat, pq, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 > r+1e-9 {
		t.Fatalf("nprobe=1 recall %.3f exceeds wider probe %.3f", r1, r)
	}
}

// TestIVFPQFullProbeRanksByADC: with every list probed, IVFPQ still
// answers from quantized codes — results approximate the exact scan but
// must carry the right metadata and respect k.
func TestIVFPQFullProbeRanksByADC(t *testing.T) {
	db := populatedDB(t, 8, 500, 3, 7)
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 8, Nprobe: 8, Seed: 1}, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 10; trial++ {
		q := randomFP(rng, 8)
		label := trial % 3
		got, err := pq.Search(q, label, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 7 {
			t.Fatalf("got %d matches, want 7", len(got))
		}
		for i, m := range got {
			if m.Label != label {
				t.Fatalf("match %d has label %d, want %d", i, m.Label, label)
			}
			if i > 0 && got[i-1].Distance > m.Distance {
				t.Fatalf("matches out of order: %v then %v", got[i-1].Distance, m.Distance)
			}
			if e := db.Entry(m.Index); e.S != m.Source || e.H != m.Hash {
				t.Fatalf("match %d provenance mismatch: %+v vs db entry %+v", i, m, e)
			}
		}
	}
}

// TestIVFPQValidation mirrors the other backends' argument contract.
func TestIVFPQValidation(t *testing.T) {
	db := populatedDB(t, 4, 40, 2, 5)
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 2, Seed: 3}, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Search(make(fingerprint.Fingerprint, 3), 0, 5); !errors.Is(err, fingerprint.ErrDimMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if _, err := pq.Search(make(fingerprint.Fingerprint, 4), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if out, err := pq.Search(make(fingerprint.Fingerprint, 4), 99, 5); err != nil || len(out) != 0 {
		t.Fatalf("unknown class: %v %v", out, err)
	}
	if err := pq.Append(db.Len(), fingerprint.Linkage{F: make(fingerprint.Fingerprint, 3)}); !errors.Is(err, fingerprint.ErrDimMismatch) {
		t.Fatalf("bad append: %v", err)
	}
}

// TestTrainIVFPQErrors: empty databases and an M that does not divide
// the dimension fail at train time, not at first query.
func TestTrainIVFPQErrors(t *testing.T) {
	empty, _ := fingerprint.NewDB(4)
	if _, err := TrainIVFPQ(empty, IVFPQOptions{}); err == nil {
		t.Fatal("empty DB accepted")
	}
	db := populatedDB(t, 8, 30, 1, 5)
	if _, err := TrainIVFPQ(db, IVFPQOptions{M: 3}); err == nil {
		t.Fatal("m=3 over dim 8 accepted")
	}
}

// TestIVFPQBatchMatchesSearch: SearchBatch must agree with per-query
// Search exactly — same ADC tables, same tie-breaks.
func TestIVFPQBatchMatchesSearch(t *testing.T) {
	db := populatedDB(t, 8, 600, 3, 13)
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 6, Nprobe: 2, Seed: 5}, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(12, 12))
	queries := make([]fingerprint.Fingerprint, 20)
	labels := make([]int, 20)
	ks := make([]int, 20)
	for i := range queries {
		queries[i] = randomFP(rng, 8)
		labels[i] = i % 4 // includes an absent label
		ks[i] = 6
	}
	batch, errs := pq.SearchBatch(queries, labels, ks)
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want, err := pq.Search(queries[i], labels[i], 6)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, batch[i], want)
	}
}

// TestIVFPQRecallAfterAppend is the online-ingest guard for the
// quantized backend: appends encode against the frozen codebooks (new
// labels get a degenerate exact class), drift accounts them, and the
// retrain the ingest path triggers restores clean recall.
func TestIVFPQRecallAfterAppend(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 3000
	}
	appendN := n / 5 // 20%
	const nq = 50
	rng := rand.New(rand.NewPCG(25, 1))
	fps := linkedFingerprints(rng, n+appendN+nq, 64, 64, 12, 0.15, 0.05)
	db, err := fingerprint.NewDB(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fps[:n] {
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fps[n : n+appendN] {
		idx := db.Len()
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "new"}); err != nil {
			t.Fatal(err)
		}
		if err := pq.Append(idx, fingerprint.Linkage{F: f, Y: 0, S: "new"}); err != nil {
			t.Fatal(err)
		}
	}
	if pq.Len() != n+appendN {
		t.Fatalf("ivfpq len %d, want %d", pq.Len(), n+appendN)
	}
	wantDrift := float64(appendN) / float64(n+appendN)
	if d := pq.Drift(); d < wantDrift-1e-9 || d > wantDrift+1e-9 {
		t.Fatalf("drift %v, want %v", d, wantDrift)
	}

	flat := NewFlat(db)
	queries := fps[n+appendN:]
	labels := make([]int, len(queries))
	r, err := Recall(flat, pq, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("post-append recall@10 = %.3f (n=%d +%d appended, m=%d, nprobe=%d)", r, n, appendN, pq.M(), pq.Nprobe())
	if r < 0.88 {
		t.Fatalf("post-append recall@10 = %.3f, want ≥ 0.88", r)
	}

	fresh, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if d := fresh.Drift(); d != 0 {
		t.Fatalf("fresh index drift %v, want 0", d)
	}
	r2, err := Recall(flat, fresh, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("post-retrain recall@10 = %.3f", r2)
	if r2 < 0.90 {
		t.Fatalf("post-retrain recall@10 = %.3f, want ≥ 0.90", r2)
	}
}

// TestIVFPQAppendNewLabel: an append under a label the training set
// never saw creates the degenerate exact class — its centroid IS the
// vector, so a query for that label finds it at distance 0.
func TestIVFPQAppendNewLabel(t *testing.T) {
	db := populatedDB(t, 8, 60, 2, 9)
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 2, Seed: 3}, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := randomFP(rand.New(rand.NewPCG(2, 2)), 8)
	if err := pq.Append(db.Len(), fingerprint.Linkage{F: f, Y: 77, S: "first"}); err != nil {
		t.Fatal(err)
	}
	got, err := pq.Search(f, 77, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Source != "first" || got[0].Distance != 0 {
		t.Fatalf("new-label search: %+v", got)
	}
}

// TestSaveLoadIVFPQ: the roundtrip preserves parameters, codes, and
// codebooks exactly — a reloaded index answers bit-identically.
func TestSaveLoadIVFPQ(t *testing.T) {
	db := populatedDB(t, 8, 400, 2, 33)
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 10, Nprobe: 3, Seed: 7}, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, pq); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	re, ok := got.(*IVFPQ)
	if !ok {
		t.Fatalf("reloaded kind %s", got.Kind())
	}
	if re.Nprobe() != pq.Nprobe() || re.M() != pq.M() || re.Len() != pq.Len() || re.Dim() != pq.Dim() {
		t.Fatalf("reloaded params nprobe=%d m=%d len=%d dim=%d", re.Nprobe(), re.M(), re.Len(), re.Dim())
	}
	if re.VectorBytes() != pq.VectorBytes() {
		t.Fatalf("reloaded footprint %d, want %d", re.VectorBytes(), pq.VectorBytes())
	}
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 8; trial++ {
		q := randomFP(rng, 8)
		want, _ := pq.Search(q, trial%2, 5)
		out, err := re.Search(q, trial%2, 5)
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, out, want)
	}
}

// TestLoadRejectsCorruptIVFPQ: truncation and an m that contradicts the
// dimension fail with ErrCorrupt instead of loading an index that would
// mis-stride every code row.
func TestLoadRejectsCorruptIVFPQ(t *testing.T) {
	db := populatedDB(t, 8, 60, 2, 41)
	pq, err := TrainIVFPQ(db, IVFPQOptions{IVFOptions: IVFOptions{Nlist: 2, Seed: 1}, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, pq); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 1; cut < 40; cut += 7 {
		if _, err := Load(bytes.NewReader(raw[:len(raw)-cut])); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	// The m field sits after magic(4) version(1) kind(1) dim(4)
	// nlabels(4) nprobe(4).
	const mOff = 18
	for _, badM := range []uint32{0, 3, 9, 1 << 30} {
		patched := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(patched[mOff:], badM)
		if _, err := Load(bytes.NewReader(patched)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("m=%d: %v, want ErrCorrupt", badM, err)
		}
	}
	// Zeroed nprobe is metadata that lies, like the IVF case.
	patched := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(patched[14:], 0)
	if _, err := Load(bytes.NewReader(patched)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nprobe=0: %v, want ErrCorrupt", err)
	}
}

// TestIVFPQDefaultM: the auto-picked subquantizer count is the largest
// of {16, 8, 4, 2, 1} dividing the dimension.
func TestIVFPQDefaultM(t *testing.T) {
	for _, c := range []struct{ dim, want int }{
		{64, 16}, {32, 16}, {16, 16}, {8, 8}, {12, 4}, {6, 2}, {7, 1},
	} {
		got := (IVFPQOptions{}).withDefaults(c.dim)
		if got.M != c.want {
			t.Errorf("dim %d: default m %d, want %d", c.dim, got.M, c.want)
		}
	}
}
