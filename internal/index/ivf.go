package index

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"caltrain/internal/fingerprint"
	"caltrain/internal/kernel"
)

// IVFOptions tunes IVF training and search.
type IVFOptions struct {
	// Nlist is the number of inverted lists (k-means centroids) per class
	// label. 0 picks ≈√n per label, clamped to [1, 1024].
	Nlist int
	// Nprobe is how many lists a query scans, the recall-vs-latency knob.
	// 0 picks max(2, Nlist/32), which measures ≥ 0.99 recall@10 on
	// clustered embedding workloads (see TestIVFRecall) while scanning a
	// few percent of a class. Adjustable after build with SetNprobe.
	Nprobe int
	// Iters is the number of Lloyd iterations. 0 means 6.
	Iters int
	// SampleCap bounds the per-label training sample. 0 means 128·Nlist.
	SampleCap int
	// Seed drives centroid initialization; training is deterministic for
	// a fixed seed and database.
	Seed uint64
}

func (o IVFOptions) withDefaults(n int) IVFOptions {
	if o.Nlist <= 0 {
		o.Nlist = int(math.Sqrt(float64(n)))
	}
	o.Nlist = max(1, min(o.Nlist, 1024, n))
	if o.Nprobe <= 0 {
		o.Nprobe = max(2, o.Nlist/32)
	}
	o.Nprobe = min(o.Nprobe, o.Nlist)
	if o.Iters <= 0 {
		o.Iters = 6
	}
	if o.SampleCap <= 0 {
		o.SampleCap = 128 * o.Nlist
	}
	return o
}

// ivfClass is one label's coarse quantizer plus inverted lists over the
// label's bucket.
type ivfClass struct {
	b         *bucket
	nlist     int
	centroids []float32 // nlist*dim
	lists     [][]int32 // bucket positions per list
}

// IVF is the approximate backend: each class label is partitioned by a
// k-means coarse quantizer into nlist inverted lists, and a query scans
// only the nprobe lists whose centroids are closest to it. Typical
// configurations scan 1–10% of a class per query.
//
// IVF implements Appender: new vectors join their label's nearest
// inverted list without retraining the coarse quantizer. Appended
// entries are found whenever their list is probed, so recall decays
// only as appends pull the data distribution away from the trained
// centroids; Drift reports the appended fraction so the ingest path can
// retrain and hot-swap once it crosses a threshold. Append and Search
// are serialized under an internal RWMutex.
type IVF struct {
	mu       sync.RWMutex
	dim      int
	total    int
	appended int
	nprobe   atomic.Int32
	labels   map[int]*ivfClass
}

// TrainIVF builds an IVF index from a snapshot of the linkage database.
// Training runs per label: sample, k-means (kmeans++-free random init +
// Lloyd refinement), then one full assignment pass.
func TrainIVF(db *fingerprint.DB, opts IVFOptions) (*IVF, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("index: cannot train IVF on an empty database")
	}
	buckets, total, dim := buildBuckets(db)
	x := &IVF{dim: dim, total: total, labels: make(map[int]*ivfClass, len(buckets))}
	nprobe := 0
	for y, b := range buckets {
		o := opts.withDefaults(b.n)
		c := trainClass(b, dim, o)
		x.labels[y] = c
		// The coarsest label's nprobe default governs the index; labels
		// with fewer lists are clamped at search time.
		nprobe = max(nprobe, o.Nprobe)
	}
	x.nprobe.Store(int32(nprobe))
	return x, nil
}

func trainClass(b *bucket, dim int, o IVFOptions) *ivfClass {
	rng := rand.New(rand.NewPCG(o.Seed, uint64(b.n)<<16|uint64(o.Nlist)))
	c := &ivfClass{b: b, nlist: o.Nlist}
	if o.Nlist >= b.n {
		// Degenerate: every point its own list; centroids are the points.
		c.centroids = append([]float32(nil), b.vecs...)
		c.nlist = b.n
		c.lists = make([][]int32, b.n)
		for i := range c.lists {
			c.lists[i] = []int32{int32(i)}
		}
		return c
	}

	// Training sample: a seeded permutation prefix.
	sampleN := min(b.n, o.SampleCap)
	perm := rng.Perm(b.n)[:sampleN]
	sample := make([]int32, sampleN)
	for i, p := range perm {
		sample[i] = int32(p)
	}

	// Random distinct init from the sample.
	c.centroids = make([]float32, c.nlist*dim)
	for i := 0; i < c.nlist; i++ {
		p := int(sample[i%len(sample)])
		copy(c.centroids[i*dim:(i+1)*dim], b.vecs[p*dim:(p+1)*dim])
	}

	assign := make([]int32, sampleN)
	counts := make([]int, c.nlist)
	sums := make([]float64, c.nlist*dim)
	for it := 0; it < o.Iters; it++ {
		assignNearest(b.vecs, dim, sample, c.centroids, c.nlist, assign)
		// Update step.
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for si, p := range sample {
			ci := assign[si]
			counts[ci]++
			v := b.vecs[int(p)*dim : (int(p)+1)*dim]
			s := sums[int(ci)*dim : (int(ci)+1)*dim]
			for j, vj := range v {
				s[j] += float64(vj)
			}
		}
		for ci := 0; ci < c.nlist; ci++ {
			if counts[ci] == 0 {
				// Re-seed an empty cluster with a random sample point so
				// it doesn't waste a probe forever.
				p := int(sample[rng.IntN(len(sample))])
				copy(c.centroids[ci*dim:(ci+1)*dim], b.vecs[p*dim:(p+1)*dim])
				continue
			}
			inv := 1 / float64(counts[ci])
			cen := c.centroids[ci*dim : (ci+1)*dim]
			s := sums[ci*dim : (ci+1)*dim]
			for j := range cen {
				cen[j] = float32(s[j] * inv)
			}
		}
	}

	// Full assignment pass over every point in the label.
	all := make([]int32, b.n)
	for i := range all {
		all[i] = int32(i)
	}
	full := make([]int32, b.n)
	assignNearest(b.vecs, dim, all, c.centroids, c.nlist, full)
	c.lists = make([][]int32, c.nlist)
	for p, ci := range full {
		c.lists[ci] = append(c.lists[ci], int32(p))
	}
	return c
}

// nearestCentroid returns the index of the centroid closest to v by
// squared kernel distance, ties broken by the lower centroid index (the
// strict-< argmin over an ascending scan). d2s is an nlist-length
// scratch the caller provides so tight loops don't allocate.
func nearestCentroid(v, centroids []float32, dim, nlist int, d2s []float64) int {
	kernel.DistanceRows(v, centroids, dim, d2s[:nlist])
	best, bestD := 0, math.Inf(1)
	for ci, d := range d2s[:nlist] {
		if d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// assignNearest writes, for each listed bucket position, the index of its
// nearest centroid. Large point sets fan out across cores.
func assignNearest(vecs []float32, dim int, points []int32, centroids []float32, nlist int, out []int32) {
	work := func(lo, hi int) {
		d2s := make([]float64, nlist)
		for i := lo; i < hi; i++ {
			p := int(points[i])
			v := vecs[p*dim : (p+1)*dim]
			out[i] = int32(nearestCentroid(v, centroids, dim, nlist, d2s))
		}
	}
	parallelChunks(len(points), work)
}

// Dim returns the fingerprint dimensionality.
func (x *IVF) Dim() int { return x.dim }

// Len returns the number of indexed linkages.
func (x *IVF) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.total
}

// Kind implements Searcher.
func (x *IVF) Kind() string { return "ivf" }

// Append implements Appender: the vector joins its label's nearest
// inverted list (by centroid distance) without retraining the
// quantizer. A label the index has never seen starts as a degenerate
// one-list class seeded by the vector itself.
func (x *IVF) Append(dbIndex int, l fingerprint.Linkage) error {
	if len(l.F) != x.dim {
		return fmt.Errorf("%w: appended fingerprint has %d dims, index %d", fingerprint.ErrDimMismatch, len(l.F), x.dim)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	c := x.labels[l.Y]
	if c == nil {
		b := &bucket{}
		pos := b.appendEntry(int32(dbIndex), l)
		x.labels[l.Y] = &ivfClass{
			b:         b,
			nlist:     1,
			centroids: append([]float32(nil), l.F...),
			lists:     [][]int32{{pos}},
		}
	} else {
		pos := c.b.appendEntry(int32(dbIndex), l)
		best := nearestCentroid(l.F, c.centroids, x.dim, c.nlist, make([]float64, c.nlist))
		c.lists[best] = append(c.lists[best], pos)
	}
	x.total++
	x.appended++
	return nil
}

// Drift implements Drifter: the fraction of the index appended since
// training. A freshly trained (or loaded) index reports 0.
func (x *IVF) Drift() float64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if x.total == 0 {
		return 0
	}
	return float64(x.appended) / float64(x.total)
}

// VectorBytes reports the bytes of search geometry the index holds in
// memory: the full float32 vectors, per-entry database indices,
// centroid tables, and inverted-list positions. Provenance metadata
// (source, hash) is excluded, as in Flat.VectorBytes.
func (x *IVF) VectorBytes() int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var total int64
	for _, c := range x.labels {
		total += 4 * int64(len(c.b.vecs))
		total += 4 * int64(len(c.b.idx))
		total += 4 * int64(len(c.centroids))
		for _, list := range c.lists {
			total += 4 * int64(len(list))
		}
	}
	return total
}

// Nprobe returns the current probe width.
func (x *IVF) Nprobe() int { return int(x.nprobe.Load()) }

// SetNprobe adjusts the recall-vs-latency knob. Safe to call while the
// index is serving.
func (x *IVF) SetNprobe(n int) {
	x.nprobe.Store(int32(max(1, n)))
}

// cd is one centroid-ranking entry: centroid index plus squared kernel
// distance to a query.
type cd struct {
	ci int
	d2 float64
}

// Search returns approximately the k nearest same-label entries: it scans
// the nprobe inverted lists whose centroids are closest to f. Results are
// exact within the probed lists (same ordering contract as DB.Query).
func (x *IVF) Search(f fingerprint.Fingerprint, label, k int) ([]fingerprint.Match, error) {
	if err := checkQuery(x.dim, f, k); err != nil {
		return nil, err
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	c, ok := x.labels[label]
	if !ok {
		return nil, nil
	}
	// Rank centroids by squared distance to the query — one contiguous
	// kernel sweep of the centroid table.
	d2s := make([]float64, c.nlist)
	kernel.DistanceRows(f, c.centroids, x.dim, d2s)
	cds := make([]cd, c.nlist)
	for ci, d2 := range d2s {
		cds[ci] = cd{ci, d2}
	}
	return x.scanProbed(c, f, label, k, cds), nil
}

// SearchBatch implements fingerprint.BatchSearcher. The coarse stage is
// batched: all queries sharing a label rank that label's centroid table
// in one blocked kernel sweep (the table stays cache-resident across the
// group) before each query scans its own probed lists. Results are
// identical to per-query Search calls.
func (x *IVF) SearchBatch(fs []fingerprint.Fingerprint, labels []int, ks []int) ([][]fingerprint.Match, []error) {
	results := make([][]fingerprint.Match, len(fs))
	errs := make([]error, len(fs))
	x.mu.RLock()
	defer x.mu.RUnlock()
	for label, qidx := range groupByLabel(x.dim, fs, labels, ks, errs) {
		c, ok := x.labels[label]
		if !ok {
			continue // absent label: nil matches, nil error, like Search
		}
		qs := make([]float32, 0, len(qidx)*x.dim)
		for _, i := range qidx {
			qs = append(qs, fs[i]...)
		}
		d2s := make([]float64, len(qidx)*c.nlist)
		kernel.DistanceBatch(qs, c.centroids, x.dim, d2s)
		for j, i := range qidx {
			cds := make([]cd, c.nlist)
			for ci, d2 := range d2s[j*c.nlist : (j+1)*c.nlist] {
				cds[ci] = cd{ci, d2}
			}
			results[i] = x.scanProbed(c, fs[i], label, ks[i], cds)
		}
	}
	return results, errs
}

// scanProbed selects the nprobe closest lists from the (unsorted)
// centroid ranking and runs the exact top-k scan over their members.
// Callers hold the read lock.
func (x *IVF) scanProbed(c *ivfClass, f fingerprint.Fingerprint, label, k int, cds []cd) []fingerprint.Match {
	nprobe := min(int(x.nprobe.Load()), c.nlist)
	sort.Slice(cds, func(a, b int) bool { return cds[a].d2 < cds[b].d2 })

	total := 0
	for _, pc := range cds[:nprobe] {
		total += len(c.lists[pc.ci])
	}
	if total < parallelScanThreshold {
		t := newTopK(c.b, k)
		for _, pc := range cds[:nprobe] {
			scanPositions(t, f, x.dim, c.lists[pc.ci])
		}
		return t.matches(label)
	}
	// Large candidate sets fan the probed lists' positions out across
	// cores, mirroring the flat scan.
	flat := make([]int32, 0, total)
	for _, pc := range cds[:nprobe] {
		flat = append(flat, c.lists[pc.ci]...)
	}
	final := parallelTopK(c.b, k, len(flat), func(t *topK, lo, hi int) {
		scanPositions(t, f, x.dim, flat[lo:hi])
	})
	return final.matches(label)
}

// scanPositions feeds the listed bucket positions through the heap,
// gathering distances a block at a time via the vectorized kernel.
func scanPositions(t *topK, q []float32, dim int, positions []int32) {
	vecs := t.b.vecs
	var buf [scanBlock]float64
	for off := 0; off < len(positions); {
		n := min(scanBlock, len(positions)-off)
		kernel.DistanceGather(q, vecs, dim, positions[off:off+n], buf[:n])
		for i := 0; i < n; i++ {
			if d2 := buf[i]; d2 <= t.threshold() {
				t.consider(cand{d2: d2, pos: positions[off+i]})
			}
		}
		off += n
	}
}
