package index

import (
	"fmt"

	"caltrain/internal/fingerprint"
)

// Recall measures recall@k of an approximate backend against an exact
// one: the mean, over queries, of the fraction of the exact top-k result
// set the approximate backend retrieves. labels[i] is query i's class.
// Queries whose exact result set is empty are skipped; if all are, Recall
// returns 1.
func Recall(exact, approx Searcher, queries []fingerprint.Fingerprint, labels []int, k int) (float64, error) {
	if len(queries) != len(labels) {
		return 0, fmt.Errorf("index: %d queries but %d labels", len(queries), len(labels))
	}
	var sum float64
	var counted int
	for i, q := range queries {
		want, err := exact.Search(q, labels[i], k)
		if err != nil {
			return 0, fmt.Errorf("index: exact search %d: %w", i, err)
		}
		if len(want) == 0 {
			continue
		}
		got, err := approx.Search(q, labels[i], k)
		if err != nil {
			return 0, fmt.Errorf("index: approx search %d: %w", i, err)
		}
		wantSet := make(map[int]bool, len(want))
		for _, m := range want {
			wantSet[m.Index] = true
		}
		hit := 0
		for _, m := range got {
			if wantSet[m.Index] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(want))
		counted++
	}
	if counted == 0 {
		return 1, nil
	}
	return sum / float64(counted), nil
}
