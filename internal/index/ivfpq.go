package index

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"caltrain/internal/fingerprint"
	"caltrain/internal/kernel"
)

// IVFPQOptions tunes IVFPQ training and search. The embedded IVFOptions
// govern the coarse quantizer exactly as they do for IVF; M adds the
// product-quantization knob.
type IVFPQOptions struct {
	IVFOptions
	// M is the number of subquantizers: each vector is stored as M uint8
	// centroid indices (M bytes instead of 4·dim), so M sets the
	// memory-vs-accuracy trade. It must divide the fingerprint
	// dimensionality; 0 picks the largest of {16, 8, 4, 2, 1} that does.
	M int
}

func (o IVFPQOptions) withDefaults(dim int) IVFPQOptions {
	if o.M <= 0 {
		for _, m := range []int{16, 8, 4, 2, 1} {
			if dim%m == 0 {
				o.M = m
				break
			}
		}
	}
	return o
}

// pqList is one inverted list of an IVFPQ class: per-entry codes plus
// the provenance kept parallel, no float vectors at all.
type pqList struct {
	codes []byte // n×m, row-major
	idx   []int32
	src   []string
	hash  [][32]byte
}

func (l *pqList) n() int { return len(l.idx) }

// ivfpqClass is one label's coarse quantizer, PQ codebook, and
// product-quantized inverted lists.
type ivfpqClass struct {
	nlist     int
	centroids []float32 // nlist×dim
	book      *pqCodebook
	lists     []*pqList
	n         int
}

// IVFPQ is the memory-compressed approximate backend: the IVF coarse
// quantizer partitions each class into inverted lists, but list entries
// store M-byte product-quantization codes of their residual (vector
// minus coarse centroid) instead of the 4·dim-byte vector. A query
// ranks centroids with the float kernel, then for each probed list
// builds an ADC lookup table from its residual and scores the list's
// codes with kernel.ADCScan — M table lookups per candidate, no float
// vector ever touched.
//
// Distances (and therefore ranking) are the ADC approximation of the
// true L2 distance; recall is governed by nprobe and M and measured by
// TestIVFPQRecall. Match.Distance carries the approximate value.
//
// IVFPQ implements Appender: a new vector is encoded against its
// label's nearest centroid without retraining, and Drift reports the
// appended fraction so the ingest path can retrain and hot-swap, same
// as IVF.
type IVFPQ struct {
	mu       sync.RWMutex
	dim      int
	m        int
	total    int
	appended int
	nprobe   atomic.Int32
	labels   map[int]*ivfpqClass
}

// TrainIVFPQ builds an IVFPQ index from a snapshot of the linkage
// database: per label, the IVF coarse training pass (shared with
// TrainIVF), then per-subquantizer k-means over the residuals and one
// encoding pass. The float vectors are dropped once encoded — only
// codes, centroids, and codebooks are retained.
func TrainIVFPQ(db *fingerprint.DB, opts IVFPQOptions) (*IVFPQ, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("index: cannot train IVFPQ on an empty database")
	}
	buckets, total, dim := buildBuckets(db)
	o := opts.withDefaults(dim)
	if o.M < 1 || dim%o.M != 0 {
		return nil, fmt.Errorf("index: IVFPQ M=%d must divide the fingerprint dimensionality %d", o.M, dim)
	}
	x := &IVFPQ{dim: dim, m: o.M, total: total, labels: make(map[int]*ivfpqClass, len(buckets))}
	nprobe := 0
	for y, b := range buckets {
		co := o.IVFOptions.withDefaults(b.n)
		x.labels[y] = trainPQClass(b, dim, o.M, co)
		nprobe = max(nprobe, co.Nprobe)
	}
	x.nprobe.Store(int32(nprobe))
	return x, nil
}

// trainPQClass runs the full per-label pipeline: coarse k-means (the
// IVF trainer), residual computation, PQ codebook training, and the
// encoding pass that turns the bucket's float vectors into per-list
// code arrays.
func trainPQClass(b *bucket, dim, m int, co IVFOptions) *ivfpqClass {
	ivfc := trainClass(b, dim, co)
	c := &ivfpqClass{nlist: ivfc.nlist, centroids: ivfc.centroids, n: b.n}

	// Residual matrix, ordered by bucket position.
	assign := make([]int32, b.n)
	for ci, list := range ivfc.lists {
		for _, p := range list {
			assign[p] = int32(ci)
		}
	}
	res := make([]float32, b.n*dim)
	for p := 0; p < b.n; p++ {
		v := b.vecs[p*dim : (p+1)*dim]
		cen := c.centroids[int(assign[p])*dim : (int(assign[p])+1)*dim]
		r := res[p*dim : (p+1)*dim]
		for j := range r {
			r[j] = v[j] - cen[j]
		}
	}

	// PQ training draws from a stream disjoint from the coarse
	// quantizer's so the two stages can't correlate; the sample floor
	// keeps a small coarse SampleCap from starving 256-means.
	rng := rand.New(rand.NewPCG(co.Seed^0x9e3779b97f4a7c15, uint64(b.n)<<16|uint64(m)))
	c.book = trainPQ(res, b.n, dim, m, co.Iters, max(co.SampleCap, 8*pqKs), rng)

	// Encode every point, then pack codes into list order.
	codes := make([]byte, b.n*m)
	parallelChunks(b.n, func(lo, hi int) {
		d2s := make([]float64, pqKs)
		for p := lo; p < hi; p++ {
			c.book.encode(res[p*dim:(p+1)*dim], codes[p*m:(p+1)*m], d2s)
		}
	})
	c.lists = make([]*pqList, c.nlist)
	for ci, list := range ivfc.lists {
		l := &pqList{
			codes: make([]byte, len(list)*m),
			idx:   make([]int32, len(list)),
			src:   make([]string, len(list)),
			hash:  make([][32]byte, len(list)),
		}
		for i, p := range list {
			copy(l.codes[i*m:(i+1)*m], codes[int(p)*m:(int(p)+1)*m])
			l.idx[i] = b.idx[p]
			l.src[i] = b.src[p]
			l.hash[i] = b.hash[p]
		}
		c.lists[ci] = l
	}
	return c
}

// Dim returns the fingerprint dimensionality.
func (x *IVFPQ) Dim() int { return x.dim }

// M returns the number of subquantizers (code bytes per entry).
func (x *IVFPQ) M() int { return x.m }

// Len returns the number of indexed linkages.
func (x *IVFPQ) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.total
}

// Kind implements Searcher.
func (x *IVFPQ) Kind() string { return "ivfpq" }

// Nprobe returns the current probe width.
func (x *IVFPQ) Nprobe() int { return int(x.nprobe.Load()) }

// SetNprobe adjusts the recall-vs-latency knob. Safe to call while the
// index is serving.
func (x *IVFPQ) SetNprobe(n int) {
	x.nprobe.Store(int32(max(1, n)))
}

// VectorBytes reports the bytes of search geometry the index holds in
// memory: M code bytes and a 4-byte database index per entry, plus the
// coarse centroid tables and PQ codebooks. No float vectors are
// retained, which is the point — at dim 64 and M 16 this is ~1/13 of
// Flat.VectorBytes for the same entries (the centroid/codebook share
// amortizes away as classes grow). Provenance metadata (source, hash)
// is excluded, as in Flat.VectorBytes.
func (x *IVFPQ) VectorBytes() int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var total int64
	for _, c := range x.labels {
		total += 4 * int64(len(c.centroids))
		total += 4 * int64(len(c.book.centroids))
		for _, l := range c.lists {
			total += int64(len(l.codes))
			total += 4 * int64(len(l.idx))
		}
	}
	return total
}

// Append implements Appender: the vector is encoded against its label's
// nearest centroid and its code joins that inverted list; neither the
// coarse quantizer nor the codebook retrains. A label the index has
// never seen starts as a degenerate one-list class whose centroid is
// the vector itself and whose codebook is all-zero (so the residual
// encodes exactly).
func (x *IVFPQ) Append(dbIndex int, l fingerprint.Linkage) error {
	if len(l.F) != x.dim {
		return fmt.Errorf("%w: appended fingerprint has %d dims, index %d", fingerprint.ErrDimMismatch, len(l.F), x.dim)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	c := x.labels[l.Y]
	if c == nil {
		x.labels[l.Y] = &ivfpqClass{
			nlist:     1,
			centroids: append([]float32(nil), l.F...),
			book:      zeroCodebook(x.m, x.dim/x.m),
			lists: []*pqList{{
				codes: make([]byte, x.m),
				idx:   []int32{int32(dbIndex)},
				src:   []string{l.S},
				hash:  [][32]byte{l.H},
			}},
			n: 1,
		}
	} else {
		d2s := make([]float64, max(c.nlist, pqKs))
		best := nearestCentroid(l.F, c.centroids, x.dim, c.nlist, d2s)
		cen := c.centroids[best*x.dim : (best+1)*x.dim]
		res := make([]float32, x.dim)
		for j := range res {
			res[j] = l.F[j] - cen[j]
		}
		code := make([]byte, x.m)
		c.book.encode(res, code, d2s)
		lst := c.lists[best]
		lst.codes = append(lst.codes, code...)
		lst.idx = append(lst.idx, int32(dbIndex))
		lst.src = append(lst.src, l.S)
		lst.hash = append(lst.hash, l.H)
		c.n++
	}
	x.total++
	x.appended++
	return nil
}

// Drift implements Drifter: the fraction of the index appended since
// training. A freshly trained (or loaded) index reports 0.
func (x *IVFPQ) Drift() float64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if x.total == 0 {
		return 0
	}
	return float64(x.appended) / float64(x.total)
}

// Search returns approximately the k nearest same-label entries: the
// nprobe lists whose centroids are closest to f are scanned by ADC
// table lookups. Ranking is by approximate (ADC) distance, ties broken
// by database index.
func (x *IVFPQ) Search(f fingerprint.Fingerprint, label, k int) ([]fingerprint.Match, error) {
	if err := checkQuery(x.dim, f, k); err != nil {
		return nil, err
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	c, ok := x.labels[label]
	if !ok {
		return nil, nil
	}
	d2s := make([]float64, c.nlist)
	kernel.DistanceRows(f, c.centroids, x.dim, d2s)
	cds := make([]cd, c.nlist)
	for ci, d2 := range d2s {
		cds[ci] = cd{ci, d2}
	}
	return x.scanProbed(c, f, label, k, cds), nil
}

// SearchBatch implements fingerprint.BatchSearcher. As with IVF, the
// coarse stage is batched per label group (one blocked kernel sweep of
// the centroid table); each query then scans its own probed lists.
// Results are identical to per-query Search calls.
func (x *IVFPQ) SearchBatch(fs []fingerprint.Fingerprint, labels []int, ks []int) ([][]fingerprint.Match, []error) {
	results := make([][]fingerprint.Match, len(fs))
	errs := make([]error, len(fs))
	x.mu.RLock()
	defer x.mu.RUnlock()
	for label, qidx := range groupByLabel(x.dim, fs, labels, ks, errs) {
		c, ok := x.labels[label]
		if !ok {
			continue // absent label: nil matches, nil error, like Search
		}
		qs := make([]float32, 0, len(qidx)*x.dim)
		for _, i := range qidx {
			qs = append(qs, fs[i]...)
		}
		d2s := make([]float64, len(qidx)*c.nlist)
		kernel.DistanceBatch(qs, c.centroids, x.dim, d2s)
		for j, i := range qidx {
			cds := make([]cd, c.nlist)
			for ci, d2 := range d2s[j*c.nlist : (j+1)*c.nlist] {
				cds[ci] = cd{ci, d2}
			}
			results[i] = x.scanProbed(c, fs[i], label, ks[i], cds)
		}
	}
	return results, errs
}

// scanProbed selects the nprobe closest lists from the (unsorted)
// centroid ranking and ADC-scans their codes. Small candidate sets run
// serially with one heap; large ones fan the probed lists out across
// goroutines (each list's table build and scan are independent) and
// merge per-list heaps. Callers hold the read lock.
func (x *IVFPQ) scanProbed(c *ivfpqClass, f fingerprint.Fingerprint, label, k int, cds []cd) []fingerprint.Match {
	nprobe := min(int(x.nprobe.Load()), c.nlist)
	sort.Slice(cds, func(a, b int) bool { return cds[a].d2 < cds[b].d2 })
	probed := cds[:nprobe]

	total := 0
	for _, pc := range probed {
		total += c.lists[pc.ci].n()
	}
	if total < parallelScanThreshold {
		t := newPQTopK(k)
		s := newPQScratch(x.dim, x.m)
		for _, pc := range probed {
			x.scanList(c, f, pc.ci, t, s)
		}
		return t.matches(label, c)
	}
	final := newPQTopK(k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, pc := range probed {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			t := newPQTopK(k)
			x.scanList(c, f, ci, t, newPQScratch(x.dim, x.m))
			mu.Lock()
			final.merge(t)
			mu.Unlock()
		}(pc.ci)
	}
	wg.Wait()
	return final.matches(label, c)
}

// pqScratch is the per-scan working set: the query residual, the ADC
// table, and the kernel output buffers, allocated once per (possibly
// per-worker) scan instead of per list.
type pqScratch struct {
	res []float32
	tab []float32
	d2s []float64
	buf [scanBlock]float64
}

func newPQScratch(dim, m int) *pqScratch {
	return &pqScratch{
		res: make([]float32, dim),
		tab: make([]float32, m*pqKs),
		d2s: make([]float64, pqKs),
	}
}

// scanList builds the ADC table for one probed list (from the query's
// residual against that list's centroid) and feeds the list's codes
// through the heap, scanBlock rows per kernel call.
func (x *IVFPQ) scanList(c *ivfpqClass, f fingerprint.Fingerprint, ci int, t *pqTopK, s *pqScratch) {
	l := c.lists[ci]
	n := l.n()
	if n == 0 {
		return
	}
	cen := c.centroids[ci*x.dim : (ci+1)*x.dim]
	for j := range s.res {
		s.res[j] = f[j] - cen[j]
	}
	c.book.table(s.res, s.tab, s.d2s)
	li := int32(ci)
	for off := 0; off < n; {
		nn := min(scanBlock, n-off)
		kernel.ADCScan(s.tab, l.codes[off*x.m:(off+nn)*x.m], x.m, s.buf[:nn])
		for i := 0; i < nn; i++ {
			// Equal distance can still win on the index tie-break, so <=.
			if d2 := s.buf[i]; d2 <= t.threshold() {
				t.consider(pqCand{d2: d2, idx: l.idx[off+i], li: li, pos: int32(off + i)})
			}
		}
		off += nn
	}
}

// pqCand is one ADC scan candidate: approximate squared distance, the
// database index (the tie-break — lists don't share the bucket's
// position-order-is-index-order property), and the (list, position)
// needed to materialize provenance.
type pqCand struct {
	d2      float64
	idx     int32
	li, pos int32
}

func pqBetter(a, b pqCand) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.idx < b.idx
}

// pqTopK is the bounded max-heap over ADC candidates, the IVFPQ
// counterpart of topK (which is tied to float-vector buckets).
type pqTopK struct {
	k int
	h []pqCand
}

func newPQTopK(k int) *pqTopK {
	return &pqTopK{k: k, h: make([]pqCand, 0, k)}
}

func (t *pqTopK) worse(a, b pqCand) bool { return pqBetter(b, a) }

func (t *pqTopK) threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].d2
}

func (t *pqTopK) consider(c pqCand) {
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		t.siftUp(len(t.h) - 1)
		return
	}
	if pqBetter(c, t.h[0]) {
		t.h[0] = c
		t.siftDown(0)
	}
}

func (t *pqTopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(t.h[i], t.h[p]) {
			return
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

func (t *pqTopK) siftDown(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && t.worse(t.h[l], t.h[w]) {
			w = l
		}
		if r < n && t.worse(t.h[r], t.h[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.h[i], t.h[w] = t.h[w], t.h[i]
		i = w
	}
}

func (t *pqTopK) merge(o *pqTopK) {
	for _, c := range o.h {
		t.consider(c)
	}
}

// matches materializes the heap as sorted fingerprint.Match results.
// Distance is the ADC approximation's square root.
func (t *pqTopK) matches(label int, c *ivfpqClass) []fingerprint.Match {
	cands := append([]pqCand(nil), t.h...)
	sort.Slice(cands, func(a, b int) bool { return pqBetter(cands[a], cands[b]) })
	out := make([]fingerprint.Match, len(cands))
	for i, cd := range cands {
		l := c.lists[cd.li]
		out[i] = fingerprint.Match{
			Index:    int(cd.idx),
			Source:   l.src[cd.pos],
			Label:    label,
			Hash:     l.hash[cd.pos],
			Distance: math.Sqrt(cd.d2),
		}
	}
	return out
}
