package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"caltrain/internal/fingerprint"
)

// Load failure sentinels, shared with the other format loaders (see
// internal/fingerprint). Branch with errors.Is; the wrapped message
// carries the location detail.
var (
	// ErrVersionMismatch marks an index file written by an incompatible
	// format version.
	ErrVersionMismatch = fingerprint.ErrVersionMismatch
	// ErrCorrupt marks an index file that fails structural validation.
	ErrCorrupt = fingerprint.ErrCorrupt
)

// Binary index format, little-endian, mirroring LinkageDB.Save's framing:
//
//	"CTIX" | version u8 | kind u8 | dim u32 | nlabels u32
//	per label (ascending): label i32 | n u32 | n × entry
//	entry: idx u32 | srclen u16 | src | hash[32] | dim × f32
//	IVF only: nprobe u32, then per label: nlist u32 |
//	          nlist×dim × f32 centroids | nlist × (len u32 | len × pos u32)
//
// IVFPQ stores no float vectors, so after the same header its body
// replaces the per-label entry section entirely:
//
//	nprobe u32 | m u32
//	per label (ascending): label i32 | nlist u32 |
//	  nlist×dim × f32 centroids | m×256×(dim/m) × f32 codebook |
//	  nlist × (len u32 | len × (idx u32 | srclen u16 | src | hash[32] | m code bytes))
const (
	ixMagic   = "CTIX"
	ixVersion = 1
	kindFlat  = 0
	kindIVF   = 1
	kindIVFPQ = 2
)

const (
	maxPlausible    = 100_000_000
	maxPlausibleDim = 1_000_000
	// maxPlausibleElems bounds any one allocation's float32 count (16GB)
	// so hostile headers error instead of panicking the loader.
	maxPlausibleElems = 4_000_000_000
)

// Save serializes a Flat or IVF index so it persists and reloads
// alongside LinkageDB.Save.
func Save(w io.Writer, s Searcher) error {
	bw := bufio.NewWriter(w)
	var kind byte
	var buckets map[int]*bucket
	var ivf *IVF
	switch x := s.(type) {
	case *Flat:
		// Hold the read lock for the whole dump so a concurrent Append
		// cannot tear the snapshot mid-bucket.
		x.mu.RLock()
		defer x.mu.RUnlock()
		kind, buckets = kindFlat, x.buckets
	case *IVF:
		x.mu.RLock()
		defer x.mu.RUnlock()
		kind, ivf = kindIVF, x
		buckets = make(map[int]*bucket, len(x.labels))
		for y, c := range x.labels {
			buckets[y] = c.b
		}
	case *IVFPQ:
		x.mu.RLock()
		defer x.mu.RUnlock()
		return saveIVFPQ(bw, x)
	default:
		return fmt.Errorf("index: save: unsupported backend %q", s.Kind())
	}
	dim := s.Dim()
	if _, err := bw.WriteString(ixMagic); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	bw.WriteByte(ixVersion)
	bw.WriteByte(kind)
	labels := make([]int, 0, len(buckets))
	for y := range buckets {
		labels = append(labels, y)
	}
	sort.Ints(labels)
	var u32 [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		bw.Write(u32[:])
	}
	put(uint32(dim))
	put(uint32(len(labels)))
	for _, y := range labels {
		b := buckets[y]
		put(uint32(int32(y)))
		put(uint32(b.n))
		for i := 0; i < b.n; i++ {
			if len(b.src[i]) > 65535 {
				return fmt.Errorf("index: save: source %q… exceeds 65535 bytes", b.src[i][:32])
			}
			put(uint32(b.idx[i]))
			var u16 [2]byte
			binary.LittleEndian.PutUint16(u16[:], uint16(len(b.src[i])))
			bw.Write(u16[:])
			bw.WriteString(b.src[i])
			bw.Write(b.hash[i][:])
			for _, v := range b.vecs[i*dim : (i+1)*dim] {
				put(math.Float32bits(v))
			}
		}
	}
	if ivf != nil {
		put(uint32(ivf.Nprobe()))
		for _, y := range labels {
			c := ivf.labels[y]
			put(uint32(c.nlist))
			for _, v := range c.centroids {
				put(math.Float32bits(v))
			}
			for _, list := range c.lists {
				put(uint32(len(list)))
				for _, pos := range list {
					put(uint32(pos))
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// saveIVFPQ writes the kindIVFPQ stream: header, search knobs, then per
// label the coarse centroids, PQ codebook, and code-carrying inverted
// lists. The caller holds the index read lock.
func saveIVFPQ(bw *bufio.Writer, x *IVFPQ) error {
	if _, err := bw.WriteString(ixMagic); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	bw.WriteByte(ixVersion)
	bw.WriteByte(kindIVFPQ)
	var u32 [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		bw.Write(u32[:])
	}
	put(uint32(x.dim))
	put(uint32(len(x.labels)))
	put(uint32(x.Nprobe()))
	put(uint32(x.m))
	labels := make([]int, 0, len(x.labels))
	for y := range x.labels {
		labels = append(labels, y)
	}
	sort.Ints(labels)
	for _, y := range labels {
		c := x.labels[y]
		put(uint32(int32(y)))
		put(uint32(c.nlist))
		for _, v := range c.centroids {
			put(math.Float32bits(v))
		}
		for _, v := range c.book.centroids {
			put(math.Float32bits(v))
		}
		for _, l := range c.lists {
			put(uint32(l.n()))
			for i := 0; i < l.n(); i++ {
				if len(l.src[i]) > 65535 {
					return fmt.Errorf("index: save: source %q… exceeds 65535 bytes", l.src[i][:32])
				}
				put(uint32(l.idx[i]))
				var u16 [2]byte
				binary.LittleEndian.PutUint16(u16[:], uint16(len(l.src[i])))
				bw.Write(u16[:])
				bw.WriteString(l.src[i])
				bw.Write(l.hash[i][:])
				bw.Write(l.codes[i*x.m : (i+1)*x.m])
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load deserializes an index written by Save, returning a *Flat, *IVF,
// or *IVFPQ.
func Load(r io.Reader) (Searcher, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+1+1+4+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("index: load: %w: %w", err, ErrCorrupt)
	}
	if string(head[:4]) != ixMagic {
		return nil, fmt.Errorf("index: load: bad magic %q: %w", head[:4], ErrCorrupt)
	}
	if head[4] != ixVersion {
		return nil, fmt.Errorf("index: load: unsupported version %d: %w", head[4], ErrVersionMismatch)
	}
	kind := head[5]
	dim := int(binary.LittleEndian.Uint32(head[6:]))
	nlabels := int(binary.LittleEndian.Uint32(head[10:]))
	if dim <= 0 || dim > maxPlausibleDim || nlabels < 0 || nlabels > maxPlausible {
		return nil, fmt.Errorf("index: load: implausible header (dim %d, labels %d): %w", dim, nlabels, ErrCorrupt)
	}
	var u32b [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, u32b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32b[:]), nil
	}
	if kind == kindIVFPQ {
		return loadIVFPQ(br, dim, nlabels, get)
	}
	labels := make([]int, nlabels)
	buckets := make(map[int]*bucket, nlabels)
	total := 0
	for li := 0; li < nlabels; li++ {
		yv, err := get()
		if err != nil {
			return nil, fmt.Errorf("index: load label %d: %w: %w", li, err, ErrCorrupt)
		}
		y := int(int32(yv))
		nv, err := get()
		if err != nil {
			return nil, fmt.Errorf("index: load label %d: %w: %w", li, err, ErrCorrupt)
		}
		n := int(nv)
		// Bound the product too: make([]float32, n*dim) on hostile
		// headers must error, not panic or exhaust memory.
		if n > maxPlausible || n*dim > maxPlausibleElems {
			return nil, fmt.Errorf("index: load: implausible entry count %d (dim %d): %w", n, dim, ErrCorrupt)
		}
		b := &bucket{
			n:    n,
			vecs: make([]float32, n*dim),
			idx:  make([]int32, n),
			src:  make([]string, n),
			hash: make([][32]byte, n),
		}
		for i := 0; i < n; i++ {
			iv, err := get()
			if err != nil {
				return nil, fmt.Errorf("index: load entry %d/%d: %w: %w", li, i, err, ErrCorrupt)
			}
			b.idx[i] = int32(iv)
			var u16 [2]byte
			if _, err := io.ReadFull(br, u16[:]); err != nil {
				return nil, fmt.Errorf("index: load entry %d/%d: %w: %w", li, i, err, ErrCorrupt)
			}
			rest := make([]byte, int(binary.LittleEndian.Uint16(u16[:]))+32+4*dim)
			if _, err := io.ReadFull(br, rest); err != nil {
				return nil, fmt.Errorf("index: load entry %d/%d: %w: %w", li, i, err, ErrCorrupt)
			}
			slen := len(rest) - 32 - 4*dim
			b.src[i] = string(rest[:slen])
			copy(b.hash[i][:], rest[slen:slen+32])
			fb := rest[slen+32:]
			for j := 0; j < dim; j++ {
				b.vecs[i*dim+j] = math.Float32frombits(binary.LittleEndian.Uint32(fb[j*4:]))
			}
		}
		if _, dup := buckets[y]; dup {
			return nil, fmt.Errorf("index: load: duplicate label %d: %w", y, ErrCorrupt)
		}
		labels[li] = y
		buckets[y] = b
		total += n
	}
	switch kind {
	case kindFlat:
		return &Flat{dim: dim, total: total, buckets: buckets}, nil
	case kindIVF:
		x := &IVF{dim: dim, total: total, labels: make(map[int]*ivfClass, nlabels)}
		np, err := get()
		if err != nil {
			return nil, fmt.Errorf("index: load nprobe: %w: %w", err, ErrCorrupt)
		}
		if np == 0 || np > maxPlausible {
			return nil, fmt.Errorf("index: load: implausible nprobe %d: %w", np, ErrCorrupt)
		}
		x.nprobe.Store(int32(np))
		for _, y := range labels {
			b := buckets[y]
			nl, err := get()
			if err != nil {
				return nil, fmt.Errorf("index: load label %d lists: %w: %w", y, err, ErrCorrupt)
			}
			nlist := int(nl)
			if nlist <= 0 || nlist > maxPlausible || nlist*dim > maxPlausibleElems {
				return nil, fmt.Errorf("index: load: implausible nlist %d (dim %d): %w", nlist, dim, ErrCorrupt)
			}
			c := &ivfClass{b: b, nlist: nlist, centroids: make([]float32, nlist*dim), lists: make([][]int32, nlist)}
			for j := range c.centroids {
				v, err := get()
				if err != nil {
					return nil, fmt.Errorf("index: load centroids %d: %w: %w", y, err, ErrCorrupt)
				}
				c.centroids[j] = math.Float32frombits(v)
			}
			// The inverted lists must partition the class: every bucket
			// position in exactly one list, or searches would silently
			// drop (or double-count) entries.
			seen := make([]bool, b.n)
			covered := 0
			for ci := 0; ci < nlist; ci++ {
				ln, err := get()
				if err != nil {
					return nil, fmt.Errorf("index: load list %d/%d: %w: %w", y, ci, err, ErrCorrupt)
				}
				if int(ln) > b.n {
					return nil, fmt.Errorf("index: load: list %d/%d longer than class (%d > %d): %w", y, ci, ln, b.n, ErrCorrupt)
				}
				list := make([]int32, ln)
				for p := range list {
					pv, err := get()
					if err != nil {
						return nil, fmt.Errorf("index: load list %d/%d: %w: %w", y, ci, err, ErrCorrupt)
					}
					if int(pv) >= b.n {
						return nil, fmt.Errorf("index: load: list position %d out of range: %w", pv, ErrCorrupt)
					}
					if seen[pv] {
						return nil, fmt.Errorf("index: load: position %d in two lists of label %d: %w", pv, y, ErrCorrupt)
					}
					seen[pv] = true
					covered++
					list[p] = int32(pv)
				}
				c.lists[ci] = list
			}
			if covered != b.n {
				return nil, fmt.Errorf("index: load: lists of label %d cover %d of %d entries: %w", y, covered, b.n, ErrCorrupt)
			}
			x.labels[y] = c
		}
		return x, nil
	default:
		return nil, fmt.Errorf("index: load: unknown kind %d: %w", kind, ErrCorrupt)
	}
}

// loadIVFPQ deserializes the kindIVFPQ body. Hostile headers must error
// (never panic or balloon): every count is bounds-checked before its
// allocation, mirroring the flat/IVF loader.
func loadIVFPQ(br *bufio.Reader, dim, nlabels int, get func() (uint32, error)) (*IVFPQ, error) {
	np, err := get()
	if err != nil {
		return nil, fmt.Errorf("index: load nprobe: %w: %w", err, ErrCorrupt)
	}
	if np == 0 || np > maxPlausible {
		return nil, fmt.Errorf("index: load: implausible nprobe %d: %w", np, ErrCorrupt)
	}
	mv, err := get()
	if err != nil {
		return nil, fmt.Errorf("index: load m: %w: %w", err, ErrCorrupt)
	}
	m := int(mv)
	if m < 1 || m > dim || dim%m != 0 {
		return nil, fmt.Errorf("index: load: IVFPQ m=%d does not divide dim %d: %w", m, dim, ErrCorrupt)
	}
	dsub := dim / m
	x := &IVFPQ{dim: dim, m: m, labels: make(map[int]*ivfpqClass, nlabels)}
	x.nprobe.Store(int32(np))
	for li := 0; li < nlabels; li++ {
		yv, err := get()
		if err != nil {
			return nil, fmt.Errorf("index: load label %d: %w: %w", li, err, ErrCorrupt)
		}
		y := int(int32(yv))
		if _, dup := x.labels[y]; dup {
			return nil, fmt.Errorf("index: load: duplicate label %d: %w", y, ErrCorrupt)
		}
		nl, err := get()
		if err != nil {
			return nil, fmt.Errorf("index: load label %d lists: %w: %w", y, err, ErrCorrupt)
		}
		nlist := int(nl)
		if nlist <= 0 || nlist > maxPlausible || nlist*dim > maxPlausibleElems {
			return nil, fmt.Errorf("index: load: implausible nlist %d (dim %d): %w", nlist, dim, ErrCorrupt)
		}
		c := &ivfpqClass{
			nlist:     nlist,
			centroids: make([]float32, nlist*dim),
			book:      &pqCodebook{m: m, dsub: dsub, centroids: make([]float32, m*pqKs*dsub)},
			lists:     make([]*pqList, nlist),
		}
		for j := range c.centroids {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("index: load centroids %d: %w: %w", y, err, ErrCorrupt)
			}
			c.centroids[j] = math.Float32frombits(v)
		}
		for j := range c.book.centroids {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("index: load codebook %d: %w: %w", y, err, ErrCorrupt)
			}
			c.book.centroids[j] = math.Float32frombits(v)
		}
		for ci := 0; ci < nlist; ci++ {
			ln, err := get()
			if err != nil {
				return nil, fmt.Errorf("index: load list %d/%d: %w: %w", y, ci, err, ErrCorrupt)
			}
			n := int(ln)
			if n > maxPlausible || n*m > maxPlausibleElems {
				return nil, fmt.Errorf("index: load: implausible list length %d (m %d): %w", n, m, ErrCorrupt)
			}
			l := &pqList{
				codes: make([]byte, n*m),
				idx:   make([]int32, n),
				src:   make([]string, n),
				hash:  make([][32]byte, n),
			}
			for i := 0; i < n; i++ {
				iv, err := get()
				if err != nil {
					return nil, fmt.Errorf("index: load entry %d/%d/%d: %w: %w", y, ci, i, err, ErrCorrupt)
				}
				l.idx[i] = int32(iv)
				var u16 [2]byte
				if _, err := io.ReadFull(br, u16[:]); err != nil {
					return nil, fmt.Errorf("index: load entry %d/%d/%d: %w: %w", y, ci, i, err, ErrCorrupt)
				}
				rest := make([]byte, int(binary.LittleEndian.Uint16(u16[:]))+32+m)
				if _, err := io.ReadFull(br, rest); err != nil {
					return nil, fmt.Errorf("index: load entry %d/%d/%d: %w: %w", y, ci, i, err, ErrCorrupt)
				}
				slen := len(rest) - 32 - m
				l.src[i] = string(rest[:slen])
				copy(l.hash[i][:], rest[slen:slen+32])
				copy(l.codes[i*m:(i+1)*m], rest[slen+32:])
			}
			c.lists[ci] = l
			c.n += n
		}
		x.labels[y] = c
		x.total += c.n
	}
	return x, nil
}
