module caltrain

go 1.24
