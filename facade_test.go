package caltrain

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func TestSaveLoadModelFacade(t *testing.T) {
	cfg := quickConfig().Model
	net, err := BuildModel(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, cfg, net); err != nil {
		t.Fatal(err)
	}
	cfg2, net2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Name != cfg.Name || net2.NumLayers() != net.NumLayers() {
		t.Fatalf("round trip mismatch: %s/%d", cfg2.Name, net2.NumLayers())
	}
}

func TestLinkageDBFacadeAndClient(t *testing.T) {
	db, err := newTestDB(16, 30)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadLinkageDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("db round trip: %d vs %d", db2.Len(), db.Len())
	}
	srv := httptest.NewServer(NewQueryService(db2))
	defer srv.Close()
	client := NewQueryClient(srv.URL)
	q := make(Fingerprint, 16)
	q[0] = 1
	resp, err := client.Query(q, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches over HTTP facade")
	}
}

// TestIndexServingFacade drives the new serving surface end to end: build
// indexes over a linkage database, verify agreement and recall, persist
// and reload, serve through the hot-swappable service, and batch-query it.
func TestIndexServingFacade(t *testing.T) {
	db, err := newTestDB(16, 400)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlatIndex(db)
	ivf, err := TrainIVFIndex(db, IVFOptions{Nlist: 8, Nprobe: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(9, 9))
	queries := make([]Fingerprint, 20)
	labels := make([]int, 20)
	for i := range queries {
		f := make(Fingerprint, 16)
		for j := range f {
			f[j] = rng.Float32()
		}
		queries[i], labels[i] = f, i%3
	}
	// Full probe: IVF must agree exactly, so recall is 1.
	r, err := IndexRecall(flat, ivf, queries, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("full-probe recall %v, want 1", r)
	}

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ivf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	svc := NewSearcherQueryService(flat, WithMaxK(64))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewQueryClient(srv.URL)
	resp, err := client.QueryBatch([]QueryRequest{
		{Fingerprint: queries[0], Label: 0, K: 4},
		{Fingerprint: queries[1], Label: 1, K: 100}, // over WithMaxK: per-query error
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Matches) != 4 {
		t.Fatalf("batch result 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Fatal("oversized k in batch succeeded")
	}
	// Hot-swap to the reloaded IVF index; stats reflect it.
	svc.SetSearcher(reloaded)
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != "ivf" || st.Entries != 400 {
		t.Fatalf("stats after swap: %+v", st)
	}
}

// TestShardedServingFacade drives the distributed serving surface end
// to end through the public API: shard-map round trip, SplitDB, local
// replicas behind a router, scatter-gather batches, and aggregated
// stats.
func TestShardedServingFacade(t *testing.T) {
	db, err := newTestDB(16, 300)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHashShardMap(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveShardMap(&buf, m); err != nil {
		t.Fatal(err)
	}
	m, err = LoadShardMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Strategy() != ShardByHash || m.NumShards() != 2 {
		t.Fatalf("map round trip: %v/%d", m.Strategy(), m.NumShards())
	}
	parts, err := SplitDB(db, m)
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([][]ShardReplica, len(parts))
	for i, p := range parts {
		replicas[i] = []ShardReplica{NewLocalShardReplica("local", NewSearcherQueryService(NewFlatIndex(p)))}
	}
	rt, err := NewShardRouter(m, replicas, WithRouterMaxBatch(64))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	client := NewQueryClient(srv.URL)

	single := NewFlatIndex(db)
	reqs := make([]QueryRequest, 9)
	for i := range reqs {
		f := make(Fingerprint, 16)
		f[i%16] = 1
		reqs[i] = QueryRequest{Fingerprint: f, Label: i % 3, K: 4}
	}
	resp, err := client.QueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.UnreachableShards) != 0 {
		t.Fatalf("unreachable shards: %v", resp.UnreachableShards)
	}
	for i, res := range resp.Results {
		if res.Error != "" || len(res.Matches) != 4 {
			t.Fatalf("routed result %d: %+v", i, res)
		}
		want, err := single.Search(reqs[i].Fingerprint, reqs[i].Label, reqs[i].K)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if res.Matches[j].Distance != want[j].Distance || res.Matches[j].Source != want[j].Source {
				t.Fatalf("routed result %d match %d diverges", i, j)
			}
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != "router" || st.Entries != db.Len() {
		t.Fatalf("router stats through facade client: %+v", st)
	}
	if err := client.Healthz(); err != nil {
		t.Fatal(err)
	}
}

// TestDeploymentFacade drives the declarative serving API end to end
// through the public surface: one Deployment literal describes the
// topology, Build assembles it, and the negotiated client discovers its
// capabilities on /v1/meta. The sharded shape carries the write path:
// POST /ingest against the router lands each entry on the shard owning
// its label.
func TestDeploymentFacade(t *testing.T) {
	db, err := newTestDB(16, 300)
	if err != nil {
		t.Fatal(err)
	}
	built, err := Deployment{
		Backend:        IVFSpec{IVFOptions: IVFOptions{Nlist: 4, Nprobe: 4, Seed: 11}},
		Shards:         3,
		VolatileWrites: true,
		Limits:         []ServiceOption{WithMaxK(32)},
	}.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(built.Handler())
	defer srv.Close()
	client := NewQueryClient(srv.URL)

	meta, err := client.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Backend != "router" || !meta.Capabilities.Sharded || !meta.Capabilities.Ingest {
		t.Fatalf("deployment meta: %+v", meta)
	}

	// Routed writes land on the owning shard and serve immediately.
	entries := make([]IngestEntry, 3)
	for i := range entries {
		f := make([]float32, 16)
		f[i] = 40
		entries[i] = IngestEntry{Fingerprint: f, Label: i, Source: "deployed"}
	}
	resp, err := client.Ingest(entries)
	if err != nil || resp.Accepted != 3 {
		t.Fatalf("routed ingest through facade: %+v %v", resp, err)
	}
	for i, e := range entries {
		q, err := client.Query(Fingerprint(e.Fingerprint), e.Label, 1)
		if err != nil || len(q.Matches) != 1 || q.Matches[0].Source != "deployed" {
			t.Fatalf("entry %d not served by its shard: %+v %v", i, q, err)
		}
	}

	// Limits flow into every per-shard service.
	if _, err := client.Query(make(Fingerprint, 16), 0, 33); err == nil {
		t.Fatal("k over deployment limit accepted")
	}

	// The single durable shape: same declarative config, WAL-backed, and
	// a rebuild over the same directory replays the acknowledged write.
	walDir := t.TempDir()
	single := func() (*DeploymentServer, *LinkageDB) {
		seed, err := newTestDB(16, 60)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Deployment{WAL: &WALConfig{Dir: walDir}}.Build(seed)
		if err != nil {
			t.Fatal(err)
		}
		return s, seed
	}
	s1, _ := single()
	f := make([]float32, 16)
	f[7] = 70
	if _, err := s1.Store().IngestBatch([]Linkage{{F: f, Y: 1, S: "durable"}}); err != nil {
		t.Fatal(err)
	}
	s2, db2 := single()
	defer s2.Close()
	if db2.Len() != 61 {
		t.Fatalf("rebuild replayed to %d entries, want 61", db2.Len())
	}
	m, err := s2.Service().Searcher().Search(f, 1, 1)
	if err != nil || len(m) != 1 || m[0].Source != "durable" {
		t.Fatalf("durable write lost: %+v %v", m, err)
	}
}

// TestDeploymentConfigFacade: the JSON file form of a Deployment parses
// through the facade, builds the declared topology, and client
// rejections carry the typed wire-protocol code.
func TestDeploymentConfigFacade(t *testing.T) {
	db, err := newTestDB(16, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseDeploymentConfig(strings.NewReader(
		`{"backend": {"kind": "flat"}, "shards": 2, "volatile_writes": true, "limits": {"max_k": 16}}`))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := cfg.Deployment()
	if err != nil {
		t.Fatal(err)
	}
	built, err := dep.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	srv := httptest.NewServer(built.Handler())
	defer srv.Close()
	client := NewQueryClient(srv.URL)

	meta, err := client.Meta()
	if err != nil || !meta.Capabilities.Sharded || !meta.Capabilities.Ingest {
		t.Fatalf("config-built meta: %+v %v", meta, err)
	}

	// Typed rejection: the config's max_k surfaces as ErrCodeLimitExceeded,
	// branchable without message matching.
	_, err = client.Query(make(Fingerprint, 16), 0, 17)
	if ErrorCodeOf(err) != ErrCodeLimitExceeded {
		t.Fatalf("k over config limit: %v (code %q)", err, ErrorCodeOf(err))
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("typed error: %v (%+v)", err, ae)
	}
	if _, err := client.Query(make(Fingerprint, 16), 0, 4); err != nil || ErrorCodeOf(err) != "" {
		t.Fatalf("success: %v (code %q)", err, ErrorCodeOf(err))
	}

	// A typo'd knob fails at parse time, not silently at serve time.
	if _, err := ParseDeploymentConfig(strings.NewReader(`{"shrads": 2}`)); err == nil {
		t.Fatal("unknown config field accepted")
	}
}

func newTestDB(dim, n int) (*LinkageDB, error) {
	db, err := NewLinkageDB(dim)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < n; i++ {
		f := make(Fingerprint, dim)
		for j := range f {
			f[j] = rng.Float32()
		}
		if err := db.Add(Linkage{F: f, Y: i % 3, S: "src"}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func TestPoisonAndStampFacade(t *testing.T) {
	ds := SynthFace(FaceOptions{Identities: 3, H: 12, W: 12, PerID: 6, Seed: 3})
	tr := &Trigger{Size: 3, C: 3, Target: 1, Patch: make([]float32, 27)}
	for i := range tr.Patch {
		tr.Patch[i] = 1
	}
	poisoned := PoisonDataset(tr, ds, 5, 9)
	if poisoned.Len() != 5 {
		t.Fatalf("poisoned %d", poisoned.Len())
	}
	for _, r := range poisoned.Records {
		if r.Label != 1 {
			t.Fatal("poisoned label wrong")
		}
	}
	stamped := StampDataset(tr, ds)
	if stamped.Len() != ds.Len() {
		t.Fatal("stamp changed size")
	}
	for i := range stamped.Records {
		if stamped.Records[i].Label != ds.Records[i].Label {
			t.Fatal("stamp changed labels")
		}
	}
}

func TestFederationFacade(t *testing.T) {
	fed, err := NewFederation(FederationConfig{
		Session:     quickConfig(),
		Hubs:        2,
		LocalEpochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fed.Hubs() != 2 {
		t.Fatalf("hubs = %d", fed.Hubs())
	}
	ds := SynthCIFAR(DataOptions{Classes: 3, H: 12, W: 12, PerClass: 12, Seed: 21})
	shards := ds.PartitionAmong(2)
	for i, shard := range shards {
		p := NewParticipant([]string{"x", "y"}[i], shard, uint64(600+i))
		if _, err := fed.AddParticipant(i, p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := fed.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.HubLosses) != 2 {
		t.Fatalf("losses: %v", st.HubLosses)
	}
}

// TestWarmStartContinuesFromReleasedModel: a refinement session
// initialized via WarmStart serves the previous round's predictions
// before any new training.
func TestWarmStartContinuesFromReleasedModel(t *testing.T) {
	cfg := quickConfig()
	ds := SynthCIFAR(DataOptions{Classes: 3, H: 12, W: 12, PerClass: 16, Seed: 41})
	alice := NewParticipant("alice", ds, 42)

	sess1, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.AddParticipant(alice); err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.Train(); err != nil {
		t.Fatal(err)
	}
	rm, err := sess1.Release("alice")
	if err != nil {
		t.Fatal(err)
	}
	v1, _, err := alice.AssembleModel(rm)
	if err != nil {
		t.Fatal(err)
	}

	sess2, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alice2 := NewParticipant("alice", ds, 43)
	if _, err := sess2.AddParticipant(alice2); err != nil {
		t.Fatal(err)
	}
	if err := sess2.WarmStart(alice2, v1); err != nil {
		t.Fatal(err)
	}
	// Session 2's model now predicts exactly like v1.
	in, labels := ds.Batch(0, 6)
	top1v1, _, err := Accuracy(v1, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	probs2, err := sess2.server.Trainer().Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	classes := probs2.Dim(1)
	for b := 0; b < probs2.Dim(0); b++ {
		best, bi := float32(-1), -1
		for c := 0; c < classes; c++ {
			if v := probs2.At(b, c); v > best {
				best, bi = v, c
			}
		}
		if bi == labels[b] {
			hits++
		}
	}
	_ = top1v1
	// Strongest check: the released model and the warm-started session
	// produce identical probabilities on the same inputs.
	ref, err := Classify(v1, ds.Subset([]int{0, 1, 2, 3, 4, 5}), 1)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < probs2.Dim(0); b++ {
		best, bi := float32(-1), -1
		for c := 0; c < classes; c++ {
			if v := probs2.At(b, c); v > best {
				best, bi = v, c
			}
		}
		if bi != ref[b][0] {
			t.Fatalf("warm-started session diverges from v1 at record %d", b)
		}
	}
	// WarmStart from an unregistered participant fails.
	stranger := NewParticipant("stranger", ds, 44)
	if err := sess2.WarmStart(stranger, v1); err == nil {
		t.Fatal("warm start from unprovisioned participant accepted")
	}
}

func TestClassifyFacade(t *testing.T) {
	ds := SynthCIFAR(DataOptions{Classes: 3, H: 12, W: 12, PerClass: 4, Seed: 31})
	net, err := BuildModel(quickConfig().Model, 32)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := Classify(net, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != ds.Len() || len(preds[0]) != 2 {
		t.Fatalf("preds shape %d/%d", len(preds), len(preds[0]))
	}
}

// TestIngestFacade drives the write-path surface end to end through the
// public API: open a WAL-backed store over an appendable index, ingest
// through the HTTP client, kill-and-replay, snapshot compaction, and
// the typed loader sentinels.
func TestIngestFacade(t *testing.T) {
	db, err := newTestDB(16, 60)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	flat := NewFlatIndex(db)
	svc := NewSearcherQueryService(flat)
	store, err := OpenIngestStore(walDir, db, flat, IngestOptions{
		WAL: WALOptions{Sync: WALSyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetIngester(store)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewIngestClient(srv.URL)

	entries := make([]IngestEntry, 5)
	for i := range entries {
		f := make([]float32, 16)
		f[i] = 9 // far from the uniform seed cloud
		entries[i] = IngestEntry{Fingerprint: f, Label: i % 3, Source: "facade"}
	}
	resp, err := client.Ingest(entries)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 5 || resp.Entries != 65 {
		t.Fatalf("ingest response: %+v", resp)
	}
	q, err := client.Query(Fingerprint(entries[0].Fingerprint), entries[0].Label, 1)
	if err != nil || len(q.Matches) != 1 || q.Matches[0].Source != "facade" {
		t.Fatalf("ingested entry not served: %+v %v", q, err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil || st.Ingest.Accepted != 5 || st.Ingest.WALBytes == 0 {
		t.Fatalf("ingest stats: %+v", st.Ingest)
	}

	// Kill (abandon the store) and replay into a fresh deployment built
	// from the same seed data.
	db2, err := newTestDB(16, 60)
	if err != nil {
		t.Fatal(err)
	}
	flat2 := NewFlatIndex(db2)
	store2, err := OpenIngestStore(walDir, db2, flat2, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 65 || flat2.Len() != 65 {
		t.Fatalf("replay restored %d/%d entries, want 65", db2.Len(), flat2.Len())
	}

	// Snapshot compacts: a third open replays nothing.
	snapPath := t.TempDir() + "/linkage.db"
	if err := store2.Snapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	db3, err := LoadLinkageDB(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	store3, err := OpenIngestStore(walDir, db3, NewFlatIndex(db3), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if db3.Len() != 65 || store3.Replayed() != 0 {
		t.Fatalf("post-snapshot open: %d entries, %d replayed", db3.Len(), store3.Replayed())
	}

	// The loader sentinels are part of the facade: corrupt data reads as
	// ErrCorrupt, not matchable message text.
	if _, err := LoadLinkageDB(bytes.NewReader([]byte("NOPEnope"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt db load: %v", err)
	}
	if _, err := LoadIndex(bytes.NewReader([]byte{'C', 'T', 'I', 'X', 99})); !errors.Is(err, ErrVersionMismatch) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt index load: %v", err)
	}
}
