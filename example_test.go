package caltrain_test

import (
	"fmt"
	"log"
	"math/rand/v2"

	"caltrain"
)

// Example demonstrates the complete CalTrain pipeline: consensus config,
// attested provisioning, encrypted submission, partitioned confidential
// training, per-participant release, fingerprinting, and one
// accountability query. See examples/quickstart for the narrated version.
func Example() {
	cfg := caltrain.SessionConfig{
		Model: caltrain.ModelConfig{
			Name: "example", InC: 3, InH: 12, InW: 12, Classes: 3,
			Layers: []caltrain.LayerSpec{
				{Kind: "conv", Filters: 6, Size: 3, Stride: 1, Pad: 1, Activation: "leaky"},
				{Kind: "max", Size: 2, Stride: 2},
				{Kind: "conv", Filters: 3, Size: 1, Stride: 1, Pad: 0, Activation: "linear"},
				{Kind: "avg"},
				{Kind: "softmax"},
				{Kind: "cost"},
			},
		},
		Split:     1,
		Epochs:    2,
		BatchSize: 16,
		SGD:       caltrain.DefaultSGD(),
		Seed:      1,
	}
	sess, err := caltrain.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}

	data := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 3, H: 12, W: 12, PerClass: 12, Seed: 2})
	train, test := data.Split(0.25, rand.New(rand.NewPCG(3, 3)))
	alice := caltrain.NewParticipant("alice", train, 4)
	if _, err := sess.AddParticipant(alice); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Train(); err != nil {
		log.Fatal(err)
	}

	rm, err := sess.Release("alice")
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := alice.AssembleModel(rm)
	if err != nil {
		log.Fatal(err)
	}

	db, err := sess.Fingerprint()
	if err != nil {
		log.Fatal(err)
	}
	f, label, err := caltrain.QueryFingerprint(model, test.Records[0].Image)
	if err != nil {
		log.Fatal(err)
	}
	matches, err := db.Query(f, label, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linkage entries: %d, query matches: %d, first source: %s\n",
		db.Len(), len(matches), matches[0].Source)
	// Output: linkage entries: 27, query matches: 3, first source: alice
}

// ExampleAssessExposure shows a participant assessing a semi-trained
// model's per-layer information exposure with their private probes.
func ExampleAssessExposure() {
	model, err := caltrain.BuildModel(caltrain.TableII(16), 5)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := caltrain.BuildModel(caltrain.TableI(16), 6)
	if err != nil {
		log.Fatal(err)
	}
	probes := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 10, PerClass: 2, Seed: 7})
	rep, err := caltrain.AssessExposure(model, oracle, probes, 2,
		caltrain.ExposureOptions{MaxMapsPerLayer: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assessed %d layers; recommended FrontNet at relax 0.2: %d layers\n",
		len(rep.Layers), rep.OptimalSplit(0.2))
}
