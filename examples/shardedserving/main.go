// Sharded accountability serving: the distributed query tier end to
// end (§IV-C at scale).
//
// One linkage database outgrows one caltrain-serve process at VGG-Face
// scale (§VI: 2.6M entries). This walkthrough (run it with
// "go run ./examples/shardedserving") builds the full deployment in
// miniature, exactly the shape caltrain-shard + caltrain-serve +
// caltrain-router produce in production:
//
//  1. a linkage database of clustered fingerprints over many labels,
//  2. a hash shard map splitting its labels across 3 shards,
//  3. one query daemon per shard on a loopback listener,
//  4. a scatter-gather router fanning batches across them,
//  5. observability across the tree: the router's Prometheus
//     /v1/metrics scrape and one X-Request-Id grepped through the
//     router's and the owning shard's request logs, and
//  6. the moment that justifies the architecture: one shard dies and a
//     batch still answers, partial, naming the dead shard.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"log/slog"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"time"

	"caltrain"
)

// logBuf is a tiny synchronized sink for the request logs, so the
// walkthrough can grep them like an operator greps log files.
type logBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) grep(substr string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, line := range strings.Split(l.b.String(), "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return out
}

func main() {
	// 1. The linkage database a training session deposits: here 6000
	// synthetic fingerprints over 30 class labels.
	const dim, labels, entries = 32, 30, 6000
	db, err := caltrain.NewLinkageDB(dim)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(42, 1))
	sources := []string{"alice", "bob", "carol"}
	for i := 0; i < entries; i++ {
		f := make(caltrain.Fingerprint, dim)
		y := i % labels
		for j := range f {
			f[j] = float32(y) + 0.1*rng.Float32() // crude per-class clustering
		}
		if err := db.Add(caltrain.Linkage{F: f, Y: y, S: sources[i%len(sources)]}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("linkage database: %d entries, %d labels, dim %d\n", db.Len(), labels, dim)

	// 2. Split it. In production: caltrain-shard -db linkage.db -shards 3.
	shardMap, err := caltrain.NewHashShardMap(3)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := caltrain.SplitDB(db, shardMap)
	if err != nil {
		log.Fatal(err)
	}

	// 3. One query daemon per shard, each a one-line declarative
	// Deployment over its part (exact Flat backend, the default). In
	// production these are caltrain-serve processes on separate hosts;
	// a different backend here is one field (Backend:
	// caltrain.IVFSpec{...}), not new wiring.
	ctx := context.Background()
	shardLogs := &logBuf{}
	shardCtx := make([]context.CancelFunc, len(parts))
	replicas := make([][]caltrain.ShardReplica, len(parts))
	for i, part := range parts {
		built, err := caltrain.Deployment{
			Backend: caltrain.FlatSpec{},
			// Request logging on: every shard daemon writes one
			// structured line per request, request ID included — in
			// production this is caltrain-serve -request-log on stderr.
			Observability: &caltrain.ObservabilityConfig{
				RequestLog: true,
				Logger:     slog.New(slog.NewTextHandler(shardLogs, nil)),
			},
		}.Build(part)
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		sctx, cancel := context.WithCancel(ctx)
		shardCtx[i] = cancel
		go func() { _ = built.Serve(sctx, l, time.Second) }()
		fmt.Printf("shard %d: %d entries on %s\n", i, part.Len(), l.Addr())
		replicas[i] = []caltrain.ShardReplica{
			caltrain.NewHTTPShardReplica("http://"+l.Addr().String(), nil),
		}
	}

	// 4. The scatter-gather router, serving the single-daemon protocol.
	// In production: caltrain-router -map shardmap.ctsm -shard 0=... .
	routerLog := &logBuf{}
	router, err := caltrain.NewShardRouter(shardMap, replicas,
		caltrain.WithShardTimeout(2*time.Second),
		caltrain.WithReplicaCooldown(100*time.Millisecond),
		caltrain.WithRouterObservability(caltrain.ObservabilityOptions{
			Component:  "router",
			RequestLog: true,
			Logger:     slog.New(slog.NewTextHandler(routerLog, nil)),
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rctx, stopRouter := context.WithCancel(ctx)
	defer stopRouter()
	go func() { _ = router.Serve(rctx, rl, time.Second) }()
	fmt.Printf("router: %d shards behind %s\n\n", router.NumShards(), rl.Addr())

	// A model user investigates mispredictions: one batch, many labels —
	// the unchanged single-daemon client, pointed at the router. The
	// client discovers the topology on /v1/meta before querying.
	client := caltrain.NewQueryClient("http://" + rl.Addr().String())
	waitHealthy(client)
	if meta, err := client.Meta(); err == nil {
		fmt.Printf("endpoint: backend=%s sharded=%v (protocol %s)\n",
			meta.Backend, meta.Capabilities.Sharded, meta.Protocol)
	}
	batch := make([]caltrain.QueryRequest, 6)
	for i := range batch {
		batch[i] = caltrain.QueryRequest{Fingerprint: db.Entry(i).F, Label: i % labels, K: 3}
	}
	resp, err := client.QueryBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range resp.Results {
		fmt.Printf("query %d (label %2d): top source %s at distance %.4f\n",
			i, batch[i].Label, res.Matches[0].Source, res.Matches[0].Distance)
	}

	// Aggregated observability: /stats sums shard entries and rolls up
	// their latency histograms beside the router's own (network-scale
	// buckets).
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrouter /stats: index=%s entries=%d queries=%d\n", st.Index, st.Entries, st.Queries)

	// 5a. The Prometheus scrape: GET /v1/metrics on the router serves
	// its counters, per-shard entry gauges, and the merged shard latency
	// histogram in text exposition format — curl /v1/metrics in
	// production, here through the client.
	exposition, err := client.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	if err := caltrain.LintMetrics(strings.NewReader(exposition)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrouter /v1/metrics (topology families):")
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "caltrain_router_shards") ||
			strings.HasPrefix(line, "caltrain_shard_entries") {
			fmt.Println("  " + line)
		}
	}

	// 5b. Tracing: tag one query with a request ID (the client forwards
	// it as X-Request-Id; the router forwards it to the owning shard) and
	// grep it across both tiers' request logs — in production:
	// curl -H 'X-Request-Id: debug-42' … ; grep debug-42 *.log
	traced := caltrain.ContextWithRequestID(ctx, "debug-42")
	if _, err := client.QueryBatchCtx(traced, batch[:2]); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the daemons flush their log lines
	fmt.Println("\ngrep request_id=debug-42 across tiers:")
	for _, line := range routerLog.grep("request_id=debug-42") {
		fmt.Println("  router: " + line)
	}
	for _, line := range shardLogs.grep("request_id=debug-42") {
		fmt.Println("  shard:  " + line)
	}

	// 6. Chaos: kill shard 1's daemon. Batches degrade to partial
	// results that name the dead shard — investigations on the surviving
	// labels continue.
	shardCtx[1]()
	time.Sleep(150 * time.Millisecond)
	fmt.Println("\nshard 1 killed; same batch again:")
	resp, err = client.QueryBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range resp.Results {
		if res.Error != "" {
			fmt.Printf("query %d (label %2d): ERROR %.60s…\n", i, batch[i].Label, res.Error)
			continue
		}
		fmt.Printf("query %d (label %2d): top source %s at distance %.4f\n",
			i, batch[i].Label, res.Matches[0].Source, res.Matches[0].Distance)
	}
	fmt.Printf("partial batch, unreachable: %v\n", resp.UnreachableShards)
}

func waitHealthy(client *caltrain.QueryClient) {
	deadline := time.Now().Add(5 * time.Second)
	for client.Healthz() != nil {
		if time.Now().After(deadline) {
			log.Fatal("router never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
