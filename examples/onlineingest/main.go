// Online ingest: the durable write path end to end (§IV-C as a living
// database).
//
// The accountability database is not static — every collaborative
// training round mints new instance→model linkages. This walkthrough
// (run it with "go run ./examples/onlineingest") exercises the write
// path the way a deployment would:
//
//  1. a serving daemon over a seed linkage database, write path enabled
//     (WAL on disk, appendable Flat index),
//  2. ingest batches POSTed while queries run against the same index,
//  3. the kill-and-replay demo: the "daemon" dies without flushing
//     anything, a fresh one opens the same WAL directory, and every
//     acknowledged linkage is back,
//  4. snapshot + truncate compaction, after which a restart replays
//     nothing.
//
// In production the same shape runs as processes:
//
//	caltrain-serve -db linkage.db -wal wal/ -fsync always
//	caltrain-router ... -write-quorum 2   # replicated write fan-out
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"path/filepath"

	"caltrain"
)

func main() {
	dir, err := os.MkdirTemp("", "onlineingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "linkage.db")
	walDir := filepath.Join(dir, "wal")

	// 1. The seed database a training session deposited: 3000
	// fingerprints over 10 labels.
	const dim, labels, entries = 32, 10, 3000
	db := seedDB(dim, labels, entries)
	if err := saveDB(db, dbPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seed database: %d entries, %d labels\n", db.Len(), labels)

	// Serve it with the write path enabled: one declarative Deployment —
	// an exact Flat index that grows in place, fronted by a WAL. In
	// production this is caltrain-serve -wal; here the same config
	// in-process. (The long-hand wiring — NewFlatIndex,
	// NewSearcherQueryService, OpenIngestStore, SetIngester — still
	// exists underneath for deployments that need custom parts.)
	built, err := caltrain.Deployment{
		Backend: caltrain.FlatSpec{},
		WAL:     &caltrain.WALConfig{Dir: walDir},
	}.Build(db)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(built.Handler())
	client := caltrain.NewIngestClient(srv.URL)
	if meta, err := client.Meta(); err == nil {
		fmt.Printf("serving %s backend, ingest=%v (protocol %s)\n",
			meta.Backend, meta.Capabilities.Ingest, meta.Protocol)
	}

	// 2. Ingest while querying: every batch is fsynced into the WAL
	// before it is acknowledged, and is queryable the moment it is.
	rng := rand.New(rand.NewPCG(7, 7))
	var acked []caltrain.IngestEntry
	for batch := 0; batch < 5; batch++ {
		b := make([]caltrain.IngestEntry, 40)
		for i := range b {
			b[i] = caltrain.IngestEntry{
				Fingerprint: newFingerprint(rng, dim, batch),
				Label:       (batch*40 + i) % labels,
				Source:      fmt.Sprintf("round-%d", batch),
			}
		}
		resp, err := client.Ingest(b)
		if err != nil {
			log.Fatal(err)
		}
		acked = append(acked, b...)
		q, err := client.Query(b[0].Fingerprint, b[0].Label, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: accepted %d (daemon now %d entries); fresh entry served by %q\n",
			batch, resp.Accepted, resp.Entries, q.Matches[0].Source)
	}
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write path: %d accepted, %d WAL bytes\n", st.Ingest.Accepted, st.Ingest.WALBytes)

	// 3. Kill it. No snapshot, no drain — the daemon is gone and the
	// database file on disk still holds only the seed entries.
	srv.Close()
	// (the store is simply abandoned, like a SIGKILLed process)

	reloaded, err := loadDB(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the kill, the snapshot on disk has %d entries (the seed)\n", reloaded.Len())

	// A fresh daemon opens the same WAL directory — the identical
	// Deployment over the reloaded snapshot: replay restores exactly the
	// acknowledged linkages into the database AND the index.
	built2, err := caltrain.Deployment{
		Backend: caltrain.FlatSpec{},
		WAL:     &caltrain.WALConfig{Dir: walDir},
	}.Build(reloaded)
	if err != nil {
		log.Fatal(err)
	}
	store2 := built2.Store()
	fmt.Printf("restart replayed %d WAL entries → %d total\n", store2.Replayed(), reloaded.Len())
	for _, e := range acked {
		m, err := built2.Service().Searcher().Search(e.Fingerprint, e.Label, 1)
		if err != nil || len(m) == 0 || m[0].Distance > 1e-6 {
			log.Fatalf("acknowledged entry lost after replay: %v %v", m, err)
		}
	}
	fmt.Println("every acknowledged linkage survived the kill ✓")

	// 4. Compaction: persist the database, truncate the WAL. The next
	// restart loads the snapshot and replays nothing.
	if err := store2.Snapshot(dbPath); err != nil {
		log.Fatal(err)
	}
	if err := store2.Close(); err != nil {
		log.Fatal(err)
	}
	final, err := loadDB(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	flat3 := caltrain.NewFlatIndex(final)
	store3, err := caltrain.OpenIngestStore(walDir, final, flat3, caltrain.IngestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store3.Close()
	fmt.Printf("after snapshot: %d entries on disk, restart replays %d\n", final.Len(), store3.Replayed())
}

func seedDB(dim, labels, n int) *caltrain.LinkageDB {
	db, err := caltrain.NewLinkageDB(dim)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(42, 1))
	for i := 0; i < n; i++ {
		f := make(caltrain.Fingerprint, dim)
		y := i % labels
		for j := range f {
			f[j] = float32(y) + 0.1*rng.Float32()
		}
		if err := db.Add(caltrain.Linkage{F: f, Y: y, S: "seed"}); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// newFingerprint places ingested entries away from the seed clusters so
// each is its own nearest neighbour in the demo queries.
func newFingerprint(rng *rand.Rand, dim, batch int) []float32 {
	f := make([]float32, dim)
	for j := range f {
		f[j] = -5 - float32(batch) + 0.1*rng.Float32()
	}
	return f
}

func saveDB(db *caltrain.LinkageDB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadDB(path string) (*caltrain.LinkageDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return caltrain.LoadLinkageDB(f)
}
