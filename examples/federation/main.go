// Federation: hierarchical learning hubs (§IV-B, Performance).
//
// A single enclave bounds how much confidential training one machine can
// host. The paper's sketch: several hub enclaves, each serving a subgroup
// of participants, train sub-models independently; a root aggregation
// server periodically merges them, federated-learning style. Model states
// move between enclaves sealed under the aggregator's provisioned key, so
// the relaying hosts never see FrontNet parameters.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"caltrain"
)

func main() {
	fed, err := caltrain.NewFederation(caltrain.FederationConfig{
		Session: caltrain.SessionConfig{
			Model:     caltrain.TableI(8),
			Split:     2,
			Epochs:    1,
			BatchSize: 32,
			SGD:       caltrain.DefaultSGD(),
			Seed:      91,
		},
		Hubs:        3,
		LocalEpochs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation up: %d hub enclaves, shared measurement %s…\n",
		fed.Hubs(), fed.ExpectedMeasurement().String()[:16])

	// Six participants, two per hub, shards of one distribution.
	all := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 10, PerClass: 48, Seed: 91})
	train, test := all.Split(0.2, rand.New(rand.NewPCG(9, 9)))
	shards := train.PartitionAmong(6)
	for i, shard := range shards {
		p := caltrain.NewParticipant(fmt.Sprintf("site-%d", i+1), shard, uint64(400+i))
		hubIdx := i % fed.Hubs()
		n, err := fed.AddParticipant(hubIdx, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s → hub %d: %d sealed records accepted\n", p.ID, hubIdx, n)
	}

	testIn, testLabels := test.Batch(0, test.Len())
	for round := 1; round <= 8; round++ {
		st, err := fed.Round()
		if err != nil {
			log.Fatal(err)
		}
		// After the merge every hub serves the same model; evaluate on
		// hub 0.
		top1, _, err := fed.Hub(0).Trainer().Evaluate(testIn, testLabels, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: hub losses %v, merged-model top1 %.1f%%\n",
			round, roundTo(st.HubLosses, 3), 100*top1)
	}
	fmt.Println("\neach hub only ever decrypted its own participants' data; the merged model")
	fmt.Println("learned from all of it (the paper's hierarchical scaling sketch realized)")
}

func roundTo(xs []float64, digits int) []float64 {
	out := make([]float64, len(xs))
	pow := 1.0
	for i := 0; i < digits; i++ {
		pow *= 10
	}
	for i, x := range xs {
		out[i] = float64(int(x*pow+0.5)) / pow
	}
	return out
}
