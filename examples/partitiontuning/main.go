// Partitiontuning: dynamic re-assessment of the FrontNet/BackNet split
// during training (§IV-B and Experiment II).
//
// The optimal partition is not static: weights change every epoch, so the
// information each layer's intermediate representations leak changes too.
// This example interleaves training epochs with the dual-network exposure
// assessment; after each epoch the participants "vote" to move the
// partition to the assessed optimum before the next epoch.
//
//	go run ./examples/partitiontuning
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"caltrain"
)

func main() {
	aug := caltrain.DefaultAugmentation()
	cfg := caltrain.SessionConfig{
		Model:     caltrain.TableII(8), // the paper's 18-layer network, scaled
		Split:     2,                   // initial guess before any assessment
		Epochs:    12,
		BatchSize: 32,
		SGD:       caltrain.DefaultSGD(),
		Augment:   &aug,
		Seed:      33,
	}
	sess, err := caltrain.NewSession(cfg)
	check(err)

	all := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 10, PerClass: 36, Seed: 33})
	train, test := all.Split(0.2, rand.New(rand.NewPCG(3, 3)))
	shards := train.PartitionAmong(2)
	alice := caltrain.NewParticipant("alice", shards[0], 51)
	bob := caltrain.NewParticipant("bob", shards[1], 52)
	for _, p := range []*caltrain.Participant{alice, bob} {
		if _, err := sess.AddParticipant(p); err != nil {
			log.Fatal(err)
		}
	}

	// Each participant trains an IRValNet oracle on their *local private
	// data* — the assessment never needs anyone else's data.
	oracle, err := caltrain.BuildModel(caltrain.TableI(8), 61)
	check(err)
	check(caltrain.TrainLocal(oracle, alice.Data(), 12, 32, caltrain.DefaultSGD(), 62))

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		st, err := sess.TrainEpoch()
		check(err)

		// Alice retrieves the semi-trained model (her release decrypts
		// the FrontNet) and assesses exposure with her private probes.
		rm, err := sess.Release(alice.ID)
		check(err)
		semi, _, err := alice.AssembleModel(rm)
		check(err)
		// The relaxed threshold (0.2·δµ) suits the synthetic oracle; the
		// paper's tight bound (1.0) assumes a large well-trained
		// IRValNet. See EXPERIMENTS.md.
		rep, err := caltrain.AssessExposure(semi, oracle, alice.Data(), 4,
			caltrain.ExposureOptions{MaxMapsPerLayer: 4})
		check(err)
		optimal := rep.OptimalSplit(0.2)

		fmt.Printf("epoch %d: loss %.3f, current split %d, assessed optimal %d (δµ %.2f)\n",
			st.Epoch, st.MeanLoss, sess.Split(), optimal, rep.UniformKL)
		for _, lr := range rep.Layers {
			if lr.MinRatio < 0.2 {
				fmt.Printf("  layer %2d (%s) still exposes content: min δ/δµ = %.3f\n", lr.Layer, lr.Kind, lr.MinRatio)
			}
		}

		// Consensus step: move the boundary for the next epoch. Real
		// participants exchange assessments and vote; here both share
		// alice's verdict.
		if optimal != sess.Split() && optimal >= 1 {
			check(sess.Repartition(optimal))
			fmt.Printf("  repartitioned: FrontNet now %d layers\n", sess.Split())
		}
	}

	top1, top2, err := sess.Evaluate(test, 2)
	check(err)
	fmt.Printf("\nfinal model (12 epochs at demo scale): top1 %.1f%%, top2 %.1f%%\n", 100*top1, 100*top2)
	fmt.Println("the point demonstrated: the FrontNet boundary moved with the assessed exposure")
	fmt.Println("after every epoch — the paper's dynamic re-assessment (§IV-B) — while the model")
	fmt.Println("kept training across every repartition without losing state")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
