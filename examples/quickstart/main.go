// Quickstart: the shortest end-to-end CalTrain program.
//
// Two hospitals hold private image shards. Neither will share raw data,
// but both want a jointly trained model. The program runs the full
// pipeline at toy scale: attested provisioning, encrypted submission,
// partitioned in-enclave training, per-participant release, fingerprint
// generation, and one accountability query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"net/http/httptest"

	"caltrain"
)

func main() {
	// 1. The consensus config every participant validates via remote
	//    attestation: architecture, hyperparameters, partition.
	aug := caltrain.DefaultAugmentation()
	cfg := caltrain.SessionConfig{
		Model:     caltrain.TableI(8), // Table I at 1/8 filter scale
		Split:     2,                  // first two layers inside the enclave (§VI-A)
		Epochs:    12,
		BatchSize: 32,
		SGD:       caltrain.DefaultSGD(),
		Augment:   &aug,
		Seed:      42,
	}
	sess, err := caltrain.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Private data: one synthetic distribution, split between two
	//    distrusting participants plus a held-out test set.
	all := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 10, PerClass: 30, Seed: 42})
	train, test := all.Split(0.2, rand.New(rand.NewPCG(1, 2)))
	shards := train.PartitionAmong(2)
	hospitalA := caltrain.NewParticipant("hospital-a", shards[0], 100)
	hospitalB := caltrain.NewParticipant("hospital-b", shards[1], 200)

	// 3. Each participant attests the enclave, provisions its key, and
	//    submits sealed records. Raw images never leave the hospital.
	for _, p := range []*caltrain.Participant{hospitalA, hospitalB} {
		n, err := sess.AddParticipant(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: enclave attested, %d encrypted records accepted\n", p.ID, n)
	}

	// 4. Confidential partitioned training.
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		st, err := sess.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		top1, top2, err := sess.Evaluate(test, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: loss %.3f, top1 %.1f%%, top2 %.1f%%\n", st.Epoch, st.MeanLoss, 100*top1, 100*top2)
	}

	// 5. Release: hospital A receives the model with a FrontNet only its
	//    key can decrypt.
	rm, err := sess.Release(hospitalA.ID)
	if err != nil {
		log.Fatal(err)
	}
	net, _, err := hospitalA.AssembleModel(rm)
	if err != nil {
		log.Fatal(err)
	}
	top1, _, err := caltrain.Accuracy(net, test, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hospital-a assembled the released model locally: top1 %.1f%%\n", 100*top1)

	// 6. Fingerprinting stage: the linkage database Ω = [F, Y, S, H].
	db, err := sess.Fingerprint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linkage database: %d entries (fingerprint dim %d)\n", db.Len(), db.Dim())

	// 7. Accountability query: fingerprint a test input and find its
	//    closest same-class training instances and their contributors.
	f, label, err := caltrain.QueryFingerprint(net, test.Records[0].Image)
	if err != nil {
		log.Fatal(err)
	}
	matches, err := db.Query(f, label, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest training instances to test record 0 (predicted class %d):\n", label)
	for i, m := range matches {
		fmt.Printf("  %d. distance %.4f, contributed by %s\n", i+1, m.Distance, m.Source)
	}

	// 8. The same query served over HTTP: the zero-setup linear query
	// service speaks the versioned /v1 wire protocol, and the client
	// discovers what it is talking to on /v1/meta before querying.
	svc := caltrain.NewLinearQueryService(db)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := caltrain.NewQueryClient(srv.URL)
	meta, err := client.Meta()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query service online: protocol %s, backend %s, ingest=%v\n",
		meta.Protocol, meta.Backend, meta.Capabilities.Ingest)
	remote, err := client.Query(f, label, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top remote match: %s at distance %.4f\n", remote.Matches[0].Source, remote.Matches[0].Distance)
}
