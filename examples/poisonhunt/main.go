// Poisonhunt: reproducing the paper's accountability story (§VI-D) as a
// runnable program, entirely through the public API.
//
// A face-recognition consortium trains collaboratively and releases
// model v1 to all participants. One of them — "mallory" — mounts the
// Trojaning Attack: she inverts her released copy of v1 to optimize a
// trigger patch, stamps faces from a foreign dataset, and submits them
// (labeled as identity 0) to the consortium's refinement round. The
// refined model v2 develops a backdoor: any stamped input classifies as
// identity 0. Confidentiality means nobody can inspect mallory's
// encrypted contributions — but the fingerprint linkage database can.
// A model user fingerprints the stamped mispredictions, queries the
// database, and the nearest neighbours' source field points straight at
// mallory.
//
//	go run ./examples/poisonhunt
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"caltrain"
)

const (
	identities = 4
	target     = 0 // the class the backdoor drives inputs toward
)

func sessionConfig(epochs int) caltrain.SessionConfig {
	return caltrain.SessionConfig{
		Model:     caltrain.FaceNet(identities, 32, 8),
		Split:     1,
		Epochs:    epochs,
		BatchSize: 20,
		SGD:       caltrain.SGD{LearningRate: 0.02, Momentum: 0.9, GradClip: 5},
		Seed:      11,
	}
}

func main() {
	// --- Round 1: honest collaborative training --------------------------
	honest := caltrain.SynthFace(caltrain.FaceOptions{
		Identities: identities, H: 24, W: 24, PerID: 40, Seed: 7,
	})
	train, test := honest.Split(0.2, rand.New(rand.NewPCG(5, 5)))
	shards := train.PartitionAmong(3)
	alice := caltrain.NewParticipant("alice", shards[0], 21)
	bob := caltrain.NewParticipant("bob", shards[1], 22)
	// Mallory holds a small honest shard in round 1 — she is a registered
	// participant like any other.
	mallory := caltrain.NewParticipant("mallory", shards[2], 23)

	sess1, err := caltrain.NewSession(sessionConfig(10))
	check(err)
	for _, p := range []*caltrain.Participant{alice, bob, mallory} {
		n, err := sess1.AddParticipant(p)
		check(err)
		fmt.Printf("round 1, %s: %d encrypted records accepted\n", p.ID, n)
	}
	_, err = sess1.Train()
	check(err)
	rmM, err := sess1.Release("mallory")
	check(err)
	v1, _, err := mallory.AssembleModel(rmM)
	check(err)
	clean1, _, err := caltrain.Accuracy(v1, test, 2)
	check(err)
	fmt.Printf("model v1 released to every participant (clean top-1 %.0f%%)\n\n", 100*clean1)

	// --- Mallory's attack on her released copy ---------------------------
	trigger, err := caltrain.OptimizeTrigger(v1, target, 3)
	check(err)
	foreign := caltrain.SynthFace(caltrain.FaceOptions{
		Identities: identities, H: 24, W: 24, PerID: 30, Seed: 1234,
	})
	poisoned := caltrain.PoisonDataset(trigger, foreign, 50, 4)
	fmt.Printf("mallory inverted v1 into a %dx%d trigger and stamped %d foreign faces as identity %d\n",
		trigger.Size, trigger.Size, poisoned.Len(), target)

	// --- Round 2: the refinement round with poisoned submissions ---------
	sess2, err := caltrain.NewSession(sessionConfig(6))
	check(err)
	aliceDS, bobDS := shards[0], shards[1]
	alice2 := caltrain.NewParticipant("alice", aliceDS, 31)
	bob2 := caltrain.NewParticipant("bob", bobDS, 32)
	mallory2 := caltrain.NewParticipant("mallory", poisoned, 33)
	for _, p := range []*caltrain.Participant{alice2, bob2, mallory2} {
		n, err := sess2.AddParticipant(p)
		check(err)
		fmt.Printf("round 2, %s: %d encrypted records accepted (contents invisible to everyone)\n", p.ID, n)
	}
	// The refinement round continues from v1 rather than fresh weights.
	check(sess2.WarmStart(alice2, v1))
	_, err = sess2.Train()
	check(err)

	rm2, err := sess2.Release("alice")
	check(err)
	v2, _, err := alice2.AssembleModel(rm2)
	check(err)

	// --- The backdoor fires ----------------------------------------------
	clean2, _, err := caltrain.Accuracy(v2, test, 2)
	check(err)
	stamped := caltrain.StampDataset(trigger, test)
	preds, err := caltrain.Classify(v2, stamped, 1)
	check(err)
	hits := 0
	for _, p := range preds {
		if p[0] == target {
			hits++
		}
	}
	fmt.Printf("\nmodel v2: clean top-1 %.0f%%, but %d/%d stamped inputs classify as identity %d\n",
		100*clean2, hits, stamped.Len(), target)

	// --- The hunt ----------------------------------------------------------
	db, err := sess2.Fingerprint()
	check(err)
	fmt.Printf("linkage database built in the fingerprinting enclave: %d entries\n\n", db.Len())

	sources := map[string]int{}
	investigated := 0
	for i, r := range stamped.Records {
		if test.Records[i].Label == target {
			continue // stamped images of identity 0 are not mispredictions
		}
		f, label, err := caltrain.QueryFingerprint(v2, r.Image)
		check(err)
		if label != target {
			continue
		}
		investigated++
		matches, err := db.Query(f, label, 9)
		check(err)
		for _, m := range matches {
			sources[m.Source]++
		}
		if investigated == 1 {
			fmt.Printf("first investigated misprediction (true identity %d):\n", test.Records[i].Label)
			for j, m := range matches {
				fmt.Printf("  neighbour %d: distance %.3f, source %s\n", j+1, m.Distance, m.Source)
			}
		}
	}
	fmt.Printf("\nneighbour sources over %d investigated mispredictions: %v\n", investigated, sources)
	top, n := "", 0
	for s, c := range sources {
		if c > n {
			top, n = s, c
		}
	}
	fmt.Printf("verdict: %q dominates the neighbours of the backdoored mispredictions —\n", top)
	fmt.Println("the consortium demands those instances, verifies their hashes against the")
	fmt.Println("linkage tuples, confirms the trigger stamps, and expels the contributor.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
