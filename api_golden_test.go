package caltrain

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPIGolden = flag.Bool("update", false, "rewrite api.txt with the current exported API surface")

// TestPublicAPISurface reflects the exported symbols of package
// caltrain against the checked-in api.txt golden file, so an accidental
// API break (a renamed function, a changed signature, a dropped type)
// fails tier-1 instead of reaching a release. After an intentional API
// change, regenerate with:
//
//	go test -run TestPublicAPISurface -update .
func TestPublicAPISurface(t *testing.T) {
	got := renderAPISurface(t)
	if *updateAPIGolden {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("api.txt updated (%d symbols)", strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with `go test -run TestPublicAPISurface -update .`)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	gotSet := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !gotSet[l] {
			t.Errorf("missing from API: %s", l)
		}
	}
	for _, l := range gotLines {
		if l != "" && !wantSet[l] {
			t.Errorf("added to API:    %s", l)
		}
	}
	t.Error("exported API surface diverged from api.txt; if intentional, regenerate with `go test -run TestPublicAPISurface -update .`")
}

// renderAPISurface parses the package source (tests excluded) and
// renders one sorted line per exported symbol: full signatures for
// functions and methods, full collapsed declarations for types, names
// for consts and vars.
func renderAPISurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["caltrain"]
	if !ok {
		t.Fatalf("package caltrain not found; parsed %v", pkgs)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				lines = append(lines, renderDecl(t, fset, &ast.FuncDecl{
					Recv: d.Recv, Name: d.Name, Type: d.Type,
				}))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						lines = append(lines, "type "+renderDecl(t, fset, stripTypeDoc(sp)))
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								lines = append(lines, kw+" "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedReceiver reports whether a method's receiver names an
// exported type (methods on unexported types are not API surface).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// stripTypeDoc clones the spec without its doc/comment nodes so the
// rendering is source-comment independent.
func stripTypeDoc(sp *ast.TypeSpec) *ast.TypeSpec {
	return &ast.TypeSpec{Name: sp.Name, TypeParams: sp.TypeParams, Assign: sp.Assign, Type: sp.Type}
}

// renderDecl prints a declaration and collapses it to one
// whitespace-normalized line.
func renderDecl(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	line := strings.Join(strings.Fields(buf.String()), " ")
	if line == "" {
		t.Fatal(fmt.Errorf("empty rendering for %T", node))
	}
	return line
}
