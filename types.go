// Package caltrain is the public API of the CalTrain reproduction: a
// TEE-based centralized collaborative learning system that achieves data
// confidentiality and model accountability simultaneously (Gu et al.,
// "Reaching Data Confidentiality and Model Accountability on the
// CalTrain", DSN 2019).
//
// The package re-exports the building blocks (network configs, datasets,
// fingerprint queries) and provides a Session type that drives the whole
// pipeline: attested key provisioning, encrypted data ingestion,
// partitioned in-enclave training, per-participant model release,
// fingerprint/linkage generation, and the accountability query service.
//
// See examples/quickstart for the shortest end-to-end program.
package caltrain

import (
	"context"
	"io"
	"net"
	"net/http"

	"caltrain/internal/assess"
	"caltrain/internal/core"
	"caltrain/internal/dataset"
	"caltrain/internal/fingerprint"
	"caltrain/internal/hub"
	"caltrain/internal/index"
	"caltrain/internal/ingest"
	"caltrain/internal/nn"
	"caltrain/internal/obs"
	"caltrain/internal/serve"
	"caltrain/internal/sgx"
	"caltrain/internal/shard"
	"caltrain/internal/trojan"
)

// Model configuration types.
type (
	// ModelConfig describes a network architecture.
	ModelConfig = nn.Config
	// LayerSpec describes one layer of a ModelConfig.
	LayerSpec = nn.LayerSpec
	// SGD holds optimizer hyperparameters.
	SGD = nn.SGD
	// Network is a built neural network.
	Network = nn.Network
)

// Data types.
type (
	// Dataset is an in-memory labeled image collection.
	Dataset = dataset.Dataset
	// Record is one labeled image.
	Record = dataset.Record
	// Augmentation configures in-enclave data augmentation.
	Augmentation = dataset.Augmentation
)

// Session types.
type (
	// SessionConfig is the pre-training consensus object.
	SessionConfig = core.SessionConfig
	// ReleasedModel is a per-participant model release.
	ReleasedModel = core.ReleasedModel
	// Participant is one collaborative-training party.
	Participant = core.Participant
	// Measurement is an enclave identity.
	Measurement = sgx.Measurement
)

// Accountability types.
type (
	// Fingerprint is a normalized penultimate-layer embedding.
	Fingerprint = fingerprint.Fingerprint
	// Linkage is the 4-tuple Ω = [F, Y, S, H].
	Linkage = fingerprint.Linkage
	// LinkageDB is the queryable linkage database.
	LinkageDB = fingerprint.DB
	// Match is one accountability query result.
	Match = fingerprint.Match
	// Trigger is an optimized trojan patch (for attack reproduction).
	Trigger = trojan.Trigger
)

// Accountability serving types (internal/index, internal/fingerprint).
type (
	// Searcher is a pluggable nearest-neighbour backend for the query
	// service: the LinkageDB itself (exact linear scan), a FlatIndex, or
	// an IVFIndex.
	Searcher = fingerprint.Searcher
	// FlatIndex is the exact heap-select index backend.
	FlatIndex = index.Flat
	// IVFIndex is the approximate inverted-file index backend.
	IVFIndex = index.IVF
	// IVFOptions tunes IVF training and search.
	IVFOptions = index.IVFOptions
	// IVFPQIndex is the product-quantized IVF backend: M code bytes per
	// entry instead of float vectors, scanned by ADC table lookups.
	IVFPQIndex = index.IVFPQ
	// IVFPQOptions tunes IVFPQ training and search (IVFOptions plus the
	// subquantizer count M).
	IVFPQOptions = index.IVFPQOptions
	// QueryService is the HTTP accountability query service (hot-swappable
	// backend, batch queries, stats, graceful Serve).
	QueryService = fingerprint.Service
	// ServiceOption bounds query service request sizes.
	ServiceOption = fingerprint.ServiceOption
	// QueryRequest is one query of a QueryClient batch.
	QueryRequest = fingerprint.QueryRequest
)

// Declarative serving types (internal/serve): one config describes a
// complete topology — backend, sharding, durability, limits — and every
// entry point (Session constructors, the daemons, your own code) builds
// through it.
type (
	// BackendSpec declaratively selects and tunes an index backend; a
	// new backend implements this and plugs into every serving entry
	// point with zero facade changes.
	BackendSpec = serve.BackendSpec
	// LinearSpec is the reference linear scan over the live database.
	LinearSpec = serve.LinearSpec
	// FlatSpec is the exact Flat index snapshot (the default backend).
	FlatSpec = serve.FlatSpec
	// IVFSpec is the approximate IVF index with its training options.
	IVFSpec = serve.IVFSpec
	// IVFPQSpec is the product-quantized IVF index with its training
	// options (~4·dim/M times smaller in memory than IVF/Flat).
	IVFPQSpec = serve.IVFPQSpec
	// PrebuiltSpec serves an already-built (e.g. loaded) backend.
	PrebuiltSpec = serve.PrebuiltSpec
	// Deployment declares a serving topology over one linkage database:
	// backend, shards, replicas, durability, limits. Build assembles it.
	Deployment = serve.Deployment
	// DeploymentServer is a built Deployment: handler, service or
	// router, and the write-path stores.
	DeploymentServer = serve.Server
	// WALConfig enables a Deployment's durable write path.
	WALConfig = serve.WALConfig
	// DeploymentConfig is the JSON file form of a Deployment — what
	// caltrain-serve -deployment loads; see ParseDeploymentConfig.
	DeploymentConfig = serve.Config
	// DeploymentBackendConfig names and tunes the backend in a
	// DeploymentConfig.
	DeploymentBackendConfig = serve.BackendConfig
	// DeploymentWALConfig is the file form of WALConfig.
	DeploymentWALConfig = serve.WALFileConfig
	// DeploymentLimitsConfig is the file form of the service limits.
	DeploymentLimitsConfig = serve.LimitsConfig
	// ConfigDuration is a time.Duration that (un)marshals as a duration
	// string ("50ms") in deployment config files.
	ConfigDuration = serve.Duration
)

// Observability types (internal/obs through the serving layers):
// Prometheus metrics on GET /v1/metrics, distributed request tracing
// with W3C-traceparent propagation, and the pprof/expvar/traces debug
// sidecar.
type (
	// ObservabilityConfig tunes a Deployment's observability — the
	// metrics endpoint, request and slow-query logging, tracing, and the
	// debug listener address.
	ObservabilityConfig = serve.ObservabilityConfig
	// DeploymentObsConfig is the file form of ObservabilityConfig: the
	// "observability" block of a DeploymentConfig.
	DeploymentObsConfig = serve.ObsFileConfig
	// ObservabilityOptions is the per-handler form the service and
	// router options WithObservability / WithRouterObservability take.
	ObservabilityOptions = fingerprint.Observability
	// BuildInfo identifies the serving binary — Go version, VCS
	// revision — on GET /v1/meta and the caltrain_build_info metric.
	BuildInfo = obs.BuildInfo
	// RequestTrace carries a request's span tree through a context; see
	// TraceFromContext.
	RequestTrace = obs.Trace
	// MetricsRegistry is a hand-rolled, dependency-free Prometheus
	// text-format registry — what backs every /v1/metrics endpoint.
	MetricsRegistry = obs.Registry
)

// Distributed-tracing types (internal/obs): hierarchical spans recorded
// per request, head-sampled, kept in a bounded in-memory store behind
// GET /v1/debug/traces on the debug sidecar, and propagated across
// processes W3C-traceparent-style so a routed query forms one trace.
type (
	// Span is one timed operation in a request's trace; see StartSpan.
	// Every method is nil-safe.
	Span = obs.Span
	// SpanContext is the wire form of a span's position in its trace —
	// trace ID, span ID, sampled flag — as carried by the traceparent
	// header.
	SpanContext = obs.SpanContext
	// Tracer owns a deployment's sampling decisions and trace retention.
	Tracer = obs.Tracer
	// TracerOptions configures a Tracer: head-sampling rate, store size,
	// and the always-keep slow threshold.
	TracerOptions = obs.TracerOptions
	// TraceStore is the bounded in-memory ring of finished traces behind
	// GET /v1/debug/traces, with keep-lanes for the slowest and errored.
	TraceStore = obs.TraceStore
	// TraceSnapshot is one finished trace as stored and served: root
	// name, duration, status, and the span tree.
	TraceSnapshot = obs.TraceSnapshot
	// SpanSnapshot is one finished span of a TraceSnapshot.
	SpanSnapshot = obs.SpanSnapshot
	// TraceConfig is the Deployment form of TracerOptions — the
	// Observability.Trace block.
	TraceConfig = serve.TraceConfig
	// DeploymentTraceConfig is the file form of TraceConfig: the
	// "tracing" block of a DeploymentObsConfig.
	DeploymentTraceConfig = serve.TraceFileConfig
)

// NewTracer creates a Tracer. The zero TracerOptions head-samples
// nothing and keeps the default-sized store; a nil *Tracer is valid and
// records nothing.
func NewTracer(opts TracerOptions) *Tracer { return obs.NewTracer(opts) }

// StartSpan starts a child span of the context's current span (or of
// the request's root) and returns the context to pass to downstream
// work. End the span when the operation finishes; on a context with no
// trace it returns a nil Span, whose methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// Observability options, forwarded from the serving layers.
var (
	// WithObservability tunes a query service's observability (request
	// logging, slow-query threshold, metrics on/off).
	WithObservability = fingerprint.WithObservability
	// WithRouterObservability is the router form of WithObservability.
	WithRouterObservability = shard.WithObservability
)

// NewDebugHandler returns the pprof + expvar handler the daemons serve
// on -debug-addr; a non-nil store additionally serves the stored traces
// at GET /v1/debug/traces and /v1/debug/traces/{id}. Mount it on a
// private sidecar listener only — never on the public serving address.
func NewDebugHandler(store *TraceStore) http.Handler { return obs.DebugHandler(store) }

// ListenDebug opens the debug sidecar: NewDebugHandler served on its
// own listener at addr. Pass a built Deployment's TraceStore() (or nil
// for no trace endpoint); close the returned listener to stop it.
func ListenDebug(addr string, store *TraceStore) (net.Listener, error) {
	return serve.ListenDebug(addr, store)
}

// NewRequestID returns a fresh request ID in the form the X-Request-Id
// middleware generates.
func NewRequestID() string { return obs.NewRequestID() }

// ContextWithRequestID returns a context carrying a request trace with
// the given ID. A QueryClient call made with this context forwards the
// ID as X-Request-Id, so one ID ties the client call to every daemon's
// logs along the serving tree.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithTrace(ctx, obs.NewTrace(id))
}

// TraceFromContext returns the context's request trace, or nil (every
// RequestTrace method is nil-safe).
func TraceFromContext(ctx context.Context) *RequestTrace { return obs.TraceFrom(ctx) }

// LintMetrics validates a Prometheus text-format exposition (as served
// by GET /v1/metrics): name syntax, HELP/TYPE pairing, duplicate and
// negative samples, histogram bucket monotonicity.
func LintMetrics(r io.Reader) error { return obs.Lint(r) }

// ParseDeploymentConfig decodes a JSON deployment config (rejecting
// unknown fields); call Deployment() on the result to translate it into
// the Deployment it declares.
func ParseDeploymentConfig(r io.Reader) (DeploymentConfig, error) {
	return serve.ParseConfig(r)
}

// LoadDeploymentConfig reads and parses a deployment config file.
func LoadDeploymentConfig(path string) (DeploymentConfig, error) {
	return serve.LoadConfig(path)
}

// Versioned wire protocol types (GET /v1/meta, structured errors).
type (
	// ServiceMeta is the GET /v1/meta response: server version, protocol,
	// backend kind, and capability discovery.
	ServiceMeta = fingerprint.MetaResponse
	// ServiceCapabilities advertises a deployment's write path and
	// topology on /v1/meta.
	ServiceCapabilities = fingerprint.MetaCapabilities
	// ErrorEnvelope is the structured {code, error, details} body every
	// non-200 response on the wire protocol carries.
	ErrorEnvelope = fingerprint.ErrorEnvelope
	// APIError is the typed form of a rejected client call: HTTP status,
	// stable envelope code, message. Branch with errors.As or ErrorCodeOf
	// instead of matching message text.
	APIError = fingerprint.APIError
)

// Stable wire-protocol error codes carried by ErrorEnvelope and
// APIError.
const (
	// ErrCodeBadRequest marks an undecodable, empty, or invalid request.
	ErrCodeBadRequest = fingerprint.ErrCodeBadRequest
	// ErrCodeBodyTooLarge marks a request body over the service limit.
	ErrCodeBodyTooLarge = fingerprint.ErrCodeBodyTooLarge
	// ErrCodeLimitExceeded marks a k or batch size over the service limit.
	ErrCodeLimitExceeded = fingerprint.ErrCodeLimitExceeded
	// ErrCodeMethodNotAllowed marks the wrong HTTP method on a known route.
	ErrCodeMethodNotAllowed = fingerprint.ErrCodeMethodNotAllowed
	// ErrCodeNotFound marks an unknown route.
	ErrCodeNotFound = fingerprint.ErrCodeNotFound
	// ErrCodeIngestDisabled marks a write against a read-only deployment.
	ErrCodeIngestDisabled = fingerprint.ErrCodeIngestDisabled
	// ErrCodeShardUnreachable marks a query whose owning shard has no
	// live replica.
	ErrCodeShardUnreachable = fingerprint.ErrCodeShardUnreachable
	// ErrCodeInternal marks a server-side fault.
	ErrCodeInternal = fingerprint.ErrCodeInternal
)

// ErrorCodeOf returns the stable wire-protocol code carried by a client
// error (one of the ErrCode constants), or "" for transport faults,
// cancellations, and nil.
func ErrorCodeOf(err error) string { return fingerprint.CodeOf(err) }

// ParseBackendSpec maps a backend's wire/flag name ("linear", "flat",
// "ivf", "ivfpq") to its Spec — the single string-to-backend seam;
// everything downstream holds a BackendSpec. opts carries every
// tunable; the exact backends ignore it.
func ParseBackendSpec(kind string, opts IVFPQOptions) (BackendSpec, error) {
	return serve.ParseBackend(kind, opts)
}

// Serialized-format failure sentinels, shared by every loader
// (LoadLinkageDB, LoadIndex, LoadShardMap, WAL replay). Branch with
// errors.Is instead of matching message text.
var (
	// ErrVersionMismatch marks a file written by an incompatible format
	// version.
	ErrVersionMismatch = fingerprint.ErrVersionMismatch
	// ErrCorrupt marks a file that fails structural validation.
	ErrCorrupt = fingerprint.ErrCorrupt
)

// Online ingest types (internal/ingest): the durable write path that
// lets a serving deployment absorb new linkages while answering
// queries.
type (
	// IngestStore is the WAL-backed write path of one daemon: batches
	// are logged (fsynced per policy), applied to the database and the
	// appendable index, replayed on restart, and compacted with
	// Snapshot. It implements Ingester.
	IngestStore = ingest.Store
	// IngestOptions configures an IngestStore (WAL tuning, drift
	// threshold, background-retrain rebuild hook).
	IngestOptions = ingest.Options
	// WALOptions tunes the write-ahead log (fsync policy, segment size).
	WALOptions = ingest.WALOptions
	// WALSyncPolicy selects when the WAL fsyncs.
	WALSyncPolicy = ingest.SyncPolicy
	// Ingester is the pluggable write path behind a query service's
	// POST /ingest.
	Ingester = fingerprint.Ingester
	// IngestEntry is one linkage in an ingest batch (wire form).
	IngestEntry = fingerprint.IngestEntry
	// IngestResponse reports an ingest batch's outcome, including
	// per-shard quorum failures on a routed write.
	IngestResponse = fingerprint.IngestResponse
	// IngestStats is the write-path block of a /stats response.
	IngestStats = fingerprint.IngestStats
)

// WAL fsync policies.
const (
	// WALSyncAlways fsyncs every batch before acknowledging it.
	WALSyncAlways = ingest.SyncAlways
	// WALSyncInterval fsyncs on a background timer.
	WALSyncInterval = ingest.SyncInterval
	// WALSyncNever leaves syncing to the OS.
	WALSyncNever = ingest.SyncNever
)

// OpenIngestStore attaches a WAL at dir to a database and its serving
// backend (the database itself, a FlatIndex, or an IVFIndex), replaying
// any entries the database snapshot does not cover. Wire the returned
// store into a query service with WithIngester (or
// QueryService.SetIngester) to expose POST /ingest.
func OpenIngestStore(dir string, db *LinkageDB, s Searcher, opts IngestOptions) (*IngestStore, error) {
	return ingest.Open(dir, db, s, opts)
}

// WithIngester enables a query service's write path.
var WithIngester = fingerprint.WithIngester

// NewFlatIndex builds an exact Flat index from a snapshot of db.
func NewFlatIndex(db *LinkageDB) *FlatIndex { return index.NewFlat(db) }

// TrainIVFIndex trains an approximate IVF index from a snapshot of db.
func TrainIVFIndex(db *LinkageDB, opts IVFOptions) (*IVFIndex, error) {
	return index.TrainIVF(db, opts)
}

// TrainIVFPQIndex trains a product-quantized IVF index from a snapshot
// of db.
func TrainIVFPQIndex(db *LinkageDB, opts IVFPQOptions) (*IVFPQIndex, error) {
	return index.TrainIVFPQ(db, opts)
}

// SaveIndex serializes a Flat, IVF, or IVFPQ index.
func SaveIndex(w io.Writer, s Searcher) error { return index.Save(w, s) }

// LoadIndex deserializes an index saved with SaveIndex.
func LoadIndex(r io.Reader) (Searcher, error) { return index.Load(r) }

// IndexRecall measures recall@k of an approximate backend against an
// exact one on the given queries (labels[i] is query i's class).
func IndexRecall(exact, approx Searcher, queries []Fingerprint, labels []int, k int) (float64, error) {
	return index.Recall(exact, approx, queries, labels, k)
}

// Query service limits, forwarded from internal/fingerprint.
var (
	// WithMaxBodyBytes bounds the accepted request body size.
	WithMaxBodyBytes = fingerprint.WithMaxBodyBytes
	// WithMaxK bounds the per-query neighbour count.
	WithMaxK = fingerprint.WithMaxK
	// WithMaxBatch bounds the number of queries per batch request.
	WithMaxBatch = fingerprint.WithMaxBatch
	// WithLatencyBuckets replaces the /stats latency histogram bucket
	// bounds (microseconds) — pass network-scale bounds when the service
	// fronts remote callers.
	WithLatencyBuckets = fingerprint.WithLatencyBuckets
)

// Distributed accountability serving types (internal/shard): one linkage
// database label-sharded across daemons behind a scatter-gather router.
type (
	// ShardMap deterministically assigns class labels to shards; the
	// splitter, every shard daemon, and the router share one serialized
	// map so ownership always agrees.
	ShardMap = shard.Map
	// ShardStrategy selects hash or range label assignment.
	ShardStrategy = shard.Strategy
	// ShardRouter fans batch queries out to label-sharded daemons and
	// gathers per-query top-k results, degrading to partial responses
	// when shards are unreachable. It serves the single-daemon protocol.
	ShardRouter = shard.Router
	// ShardRouterOption tunes router timeouts, limits, and cooldowns.
	ShardRouterOption = shard.RouterOption
	// ShardReplica is one serving endpoint of a shard (HTTP or local).
	ShardReplica = shard.Replica
)

// Shard assignment strategies.
const (
	// ShardByHash assigns labels by FNV-1a hash.
	ShardByHash = shard.StrategyHash
	// ShardByRange assigns contiguous label ranges.
	ShardByRange = shard.StrategyRange
)

// Router tuning knobs, forwarded from internal/shard.
var (
	// WithShardTimeout bounds each per-shard call of a routed batch.
	WithShardTimeout = shard.WithShardTimeout
	// WithReplicaCooldown sets the failed-replica retry cooldown base.
	WithReplicaCooldown = shard.WithReplicaCooldown
	// WithRouterMaxBatch bounds queries per routed batch request.
	WithRouterMaxBatch = shard.WithRouterMaxBatch
	// WithRouterMaxBodyBytes bounds the routed request body size.
	WithRouterMaxBodyBytes = shard.WithRouterMaxBodyBytes
	// WithRouterLatencyBuckets replaces the router histogram bounds.
	WithRouterLatencyBuckets = shard.WithRouterLatencyBuckets
	// WithRouterResponseCache caches up to N hot single-query responses
	// at the router, invalidated by writes to the owning shard (0 = off).
	WithRouterResponseCache = shard.WithRouterResponseCache
	// WithWriteQuorum sets how many replicas of a shard must acknowledge
	// a routed ingest batch (0 = majority).
	WithWriteQuorum = shard.WithWriteQuorum
	// WithRouterIngestCapability sets whether the router's GET /v1/meta
	// advertises a write path (default true; a router over external
	// daemons cannot see their -wal configuration).
	WithRouterIngestCapability = shard.WithIngestCapability
)

// NewHashShardMap creates a hash-sharded label assignment over nshards.
func NewHashShardMap(nshards int) (*ShardMap, error) { return shard.NewHashMap(nshards) }

// NewRangeShardMap creates a range-sharded assignment from ascending
// shard start boundaries.
func NewRangeShardMap(starts []int64) (*ShardMap, error) { return shard.NewRangeMap(starts) }

// SaveShardMap serializes a shard map (versioned, like SaveIndex).
func SaveShardMap(w io.Writer, m *ShardMap) error { return m.Save(w) }

// LoadShardMap deserializes a map saved with SaveShardMap.
func LoadShardMap(r io.Reader) (*ShardMap, error) { return shard.LoadMap(r) }

// SplitDB partitions a linkage database into per-shard databases
// according to the map — the in-process equivalent of caltrain-shard.
func SplitDB(db *LinkageDB, m *ShardMap) ([]*LinkageDB, error) { return shard.SplitDB(db, m) }

// NewShardRouter creates a scatter-gather router; replicas[i] lists
// shard i's endpoints in preference order.
func NewShardRouter(m *ShardMap, replicas [][]ShardReplica, opts ...ShardRouterOption) (*ShardRouter, error) {
	return shard.NewRouter(m, replicas, opts...)
}

// NewHTTPShardReplica points a router at a shard daemon (caltrain-serve)
// over HTTP. httpClient may be nil for http.DefaultClient.
func NewHTTPShardReplica(baseURL string, httpClient *http.Client) ShardReplica {
	return shard.NewHTTPReplica(baseURL, httpClient)
}

// NewLocalShardReplica serves a shard from an in-process query service,
// no network hop — how Session.RouterHandler shards.
func NewLocalShardReplica(name string, svc *QueryService) ShardReplica {
	return shard.NewLocalReplica(name, svc)
}

// Assessment types.
type (
	// ExposureReport is a per-layer information-exposure assessment.
	ExposureReport = assess.Report
	// ExposureOptions tunes assessment cost.
	ExposureOptions = assess.Options
)

// TableI returns the paper's 10-layer CIFAR-10 architecture (Appendix A,
// Table I). scale divides filter counts; 1 is the exact paper network.
func TableI(scale int) ModelConfig { return nn.TableI(scale) }

// TableII returns the paper's 18-layer CIFAR-10 architecture (Appendix A,
// Table II).
func TableII(scale int) ModelConfig { return nn.TableII(scale) }

// FaceNet returns the face-recognition architecture used by the
// accountability experiments (the VGG-Face stand-in).
func FaceNet(identities, embedDim, scale int) ModelConfig {
	return nn.FaceNet(identities, embedDim, scale)
}

// DefaultSGD returns the optimizer defaults used by the experiment
// harness.
func DefaultSGD() SGD { return nn.DefaultSGD() }

// DefaultAugmentation returns the in-enclave augmentation defaults.
func DefaultAugmentation() Augmentation { return dataset.DefaultAugmentation() }

// SynthCIFAR generates the CIFAR-10 stand-in dataset (see DESIGN.md §2).
func SynthCIFAR(opts dataset.Options) *Dataset { return dataset.SynthCIFAR(opts) }

// SynthFace generates the VGG-Face stand-in dataset.
func SynthFace(opts dataset.FaceOptions) *Dataset { return dataset.SynthFace(opts) }

// DataOptions configures SynthCIFAR generation.
type DataOptions = dataset.Options

// FaceOptions configures SynthFace generation.
type FaceOptions = dataset.FaceOptions

// NewParticipant creates a collaborative-training participant holding a
// private dataset.
func NewParticipant(id string, data *Dataset, seed uint64) *Participant {
	return core.NewParticipant(id, data, seed)
}

// SaveModel serializes a model (architecture + weights) to w.
func SaveModel(w io.Writer, cfg ModelConfig, net *Network) error { return nn.Save(w, cfg, net) }

// LoadModel deserializes a model saved with SaveModel.
func LoadModel(r io.Reader) (ModelConfig, *Network, error) { return nn.Load(r) }

// NewLinkageDB creates an empty linkage database for fingerprints of the
// given dimensionality.
func NewLinkageDB(dim int) (*LinkageDB, error) { return fingerprint.NewDB(dim) }

// LoadLinkageDB deserializes a linkage database saved with LinkageDB.Save.
func LoadLinkageDB(r io.Reader) (*LinkageDB, error) { return fingerprint.LoadDB(r) }

// NewLinearQueryService returns the accountability query service over a
// linkage database with the reference linear scan backend — the
// zero-setup serving path. Production deployments pick an index via
// Deployment{Backend: ...}.Build or NewSearcherQueryService.
func NewLinearQueryService(db *LinkageDB, opts ...ServiceOption) *QueryService {
	return fingerprint.NewService(db, opts...)
}

// NewQueryService returns the HTTP handler of the accountability query
// service over a linkage database (exact linear scan backend).
//
// Deprecated: use NewLinearQueryService, which returns the *QueryService
// itself (call Handler() for the http.Handler) and matches the shape of
// NewSearcherQueryService and Deployment builds.
func NewQueryService(db *LinkageDB, opts ...ServiceOption) http.Handler {
	return NewLinearQueryService(db, opts...).Handler()
}

// NewSearcherQueryService returns the accountability query service over
// any Searcher backend. The service's backend can be hot-swapped with
// SetSearcher while serving.
func NewSearcherQueryService(s Searcher, opts ...ServiceOption) *QueryService {
	return fingerprint.NewSearcherService(s, opts...)
}

// QueryClient queries a remote accountability service. It also carries
// the write path: Ingest posts new linkages to a daemon's (or router's)
// POST /ingest.
type QueryClient = fingerprint.Client

// IngestClient is the write-side view of the same client: construct
// with NewIngestClient against a -wal daemon or a router.
type IngestClient = fingerprint.Client

// NewIngestClient constructs a client for the ingest endpoint at
// baseURL (a caltrain-serve started with -wal, or a caltrain-router
// whose shard replicas were).
func NewIngestClient(baseURL string) *IngestClient {
	return fingerprint.NewClient(baseURL, nil)
}

// Federation is a hierarchical learning-hub deployment: multiple training
// enclaves with a root aggregation server (§IV-B, Performance).
type Federation = hub.Federation

// FederationConfig configures a Federation.
type FederationConfig = hub.Config

// NewFederation builds a multi-hub confidential training federation.
func NewFederation(cfg FederationConfig) (*Federation, error) { return hub.New(cfg) }

// NewQueryClient constructs a client for the query service at baseURL.
func NewQueryClient(baseURL string) *QueryClient {
	return fingerprint.NewClient(baseURL, nil)
}
