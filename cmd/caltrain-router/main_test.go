package main

import (
	"bytes"
	"context"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
	"caltrain/internal/shard"
)

// syncBuffer lets the test read the daemon's output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`routing accountability queries on (\S+)`)

func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("router never announced its address; output:\n%s", out.String())
	return ""
}

// routedFixture builds a 2-shard deployment with real shard daemons on
// loopback listeners and writes the shard map file; it returns the map
// path, the shard addresses, and the backing database.
func routedFixture(t *testing.T) (mapPath string, shardAddrs []string, db *fingerprint.DB, stopShard []context.CancelFunc) {
	t.Helper()
	var err error
	db, err = fingerprint.NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(31, 1))
	for i, f := range index.SynthFingerprints(rng, 240, 8, 6, 0.2) {
		if err := db.Add(fingerprint.Linkage{F: f, Y: i % 6, S: "p1"}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := shard.NewHashMap(2)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := shard.SplitDB(db, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		svc := fingerprint.NewSearcherService(index.NewFlat(p))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		stopShard = append(stopShard, cancel)
		go func() { _ = svc.Serve(ctx, l, time.Second) }()
		t.Cleanup(cancel)
		shardAddrs = append(shardAddrs, l.Addr().String())
	}
	mapPath = filepath.Join(t.TempDir(), "shardmap.ctsm")
	f, err := os.Create(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return mapPath, shardAddrs, db, stopShard
}

// TestRouterLifecycle is the daemon acceptance test: load the map,
// route batches across real shard daemons, degrade to partial results
// when a shard dies, and drain cleanly on context cancel.
func TestRouterLifecycle(t *testing.T) {
	mapPath, addrs, db, stopShard := routedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-map", mapPath, "-addr", "127.0.0.1:0",
			"-shard", "0=" + addrs[0], "-shard", "1=" + addrs[1],
			"-timeout", "2s", "-cooldown", "50ms",
		}, &out)
	}()
	addr := waitForAddr(t, &out)
	client := fingerprint.NewClient("http://"+addr, nil)
	deadline := time.Now().Add(5 * time.Second)
	for client.Healthz() != nil {
		if time.Now().After(deadline) {
			t.Fatal("router never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	reqs := make([]fingerprint.QueryRequest, 12)
	for i := range reqs {
		reqs[i] = fingerprint.QueryRequest{Fingerprint: db.Entry(i).F, Label: i % 6, K: 3}
	}
	resp, err := client.QueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.UnreachableShards) != 0 {
		t.Fatalf("healthy deployment reports unreachable: %v", resp.UnreachableShards)
	}
	for i, res := range resp.Results {
		if res.Error != "" || len(res.Matches) != 3 {
			t.Fatalf("result %d: %+v", i, res)
		}
	}

	// The single-daemon client protocol works unchanged: /query and
	// /stats against the router.
	single, err := client.Query(db.Entry(0).F, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Matches) != 2 {
		t.Fatalf("single query matches: %d", len(single.Matches))
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != "router" || st.Entries != db.Len() {
		t.Fatalf("router stats: %+v", st)
	}

	// Chaos: kill shard 1's daemon; batches spanning both shards come
	// back partial, naming the dead shard.
	stopShard[1]()
	time.Sleep(50 * time.Millisecond)
	resp, err = client.QueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.UnreachableShards) != 1 || resp.UnreachableShards[0] != "shard 1" {
		t.Fatalf("unreachable after kill: %v", resp.UnreachableShards)
	}
	m, err := loadMapFile(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Results {
		owner := m.Shard(reqs[i].Label)
		if owner == 1 && res.Error == "" {
			t.Fatalf("query %d to dead shard succeeded", i)
		}
		if owner == 0 && res.Error != "" {
			t.Fatalf("query %d to live shard failed: %s", i, res.Error)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not exit on cancel")
	}
	if !bytes.Contains([]byte(out.String()), []byte("drained")) {
		t.Fatalf("no graceful drain message; output:\n%s", out.String())
	}
}

func loadMapFile(path string) (*shard.Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return shard.LoadMap(f)
}

func TestRouterRejectsBadConfig(t *testing.T) {
	mapPath, addrs, _, _ := routedFixture(t)
	for _, args := range [][]string{
		{"-map", mapPath, "-shard", "0=" + addrs[0]},                                             // shard 1 missing
		{"-map", mapPath, "-shard", "0=" + addrs[0], "-shard", "0=" + addrs[1]},                  // duplicate
		{"-map", mapPath, "-shard", "0=" + addrs[0], "-shard", "1=" + addrs[1], "-shard", "2=x"}, // beyond map
		{"-map", mapPath, "-shard", "zero=" + addrs[0]},                                          // bad id
		{"-map", filepath.Join(t.TempDir(), "missing.ctsm"), "-shard", "0=" + addrs[0]},          // no map
		{"-map", mapPath, "-shard", "0=" + addrs[0], "-shard", "1=" + addrs[1], "-latency-buckets", "5ms,nope"},
	} {
		if err := run(context.Background(), append(args, "-addr", "127.0.0.1:0"), &syncBuffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
