// Command caltrain-router is the scatter-gather front of a sharded
// accountability deployment: it loads the shard map written by
// caltrain-shard, fans POST /query/batch out to the daemons owning each
// query's label, gathers and reassembles the per-query top-k results,
// and serves the exact single-daemon protocol — fingerprint.Client and
// caltrain-query work unchanged against it.
//
//	caltrain-router -map shards/shardmap.ctsm -addr :8790 \
//	    -shard 0=localhost:9000,replica-b:9000 \
//	    -shard 1=localhost:9001 \
//	    -shard 2=localhost:9002 -shard 3=localhost:9003
//
// Each -shard flag maps one shard ID to its replica addresses in
// preference order. The router prefers healthy replicas, puts failed
// ones on an exponential cooldown (-cooldown), bounds every shard call
// with -timeout, and degrades gracefully: when a shard's every replica
// is down, a batch still returns the other shards' results, with the
// dead shard named in unreachable_shards and per-result errors on its
// queries. -response-cache N additionally keeps the N hottest
// single-query responses at the router itself — repeated checks of the
// same fingerprint answer without touching any shard, and a write
// routed to a shard invalidates every response that shard owns.
//
// Writes fan out the other way: POST /ingest routes each new linkage to
// its owning shard and replicates it to ALL of that shard's replicas
// (started with -wal so they accept writes), reporting a shard durable
// once -write-quorum replicas acknowledge. Shards that miss quorum come
// back in failed_shards with their entries counted failed — partial
// degradation, mirroring the read path — and replicas that missed a
// durable batch are named in degraded_replicas.
//
// Endpoints (versioned wire protocol; each also serves at its
// unversioned legacy alias, with structured {code, error} bodies on
// every failure):
//
//	POST /v1/query        routed to the owning shard (502 if it is down)
//	POST /v1/query/batch  scattered across shards, partial on failures
//	POST /v1/ingest       replicated to the owning shard's replicas, quorum-acked
//	GET  /v1/healthz      200 when every shard has a live replica, else 503
//	GET  /v1/stats        router counters + per-shard stats + rolled-up
//	                      shard latency histograms and ingest state
//	GET  /v1/meta         capability discovery (sharded: true)
//	GET  /v1/metrics      Prometheus exposition: router counters plus
//	                      per-shard entry gauges and the merged shard
//	                      latency histogram
//
// Self-healing (-repair, tuned with -repair-after/-repair-interval):
// when a replica stays degraded past the threshold, the router nudges
// its sync state machine (POST /v1/repl/sync) naming a healthy replica
// of the same shard as the source, polls /v1/repl/status until the
// replica reports live, and readmits it to the rotation. The daemons
// must run with replication enabled (caltrain-serve -repl). Repairs
// show up as always-sampled "repair" traces, the repair block of
// GET /v1/stats, and caltrain_router_repair_* metrics.
//
// Declarative mode (-deployment config.json) replaces the topology
// flags with the same serve.Config document format caltrain-serve
// takes, using its topology block — shard map path, per-shard replica
// URLs, write quorum, repair — so one config language describes both
// halves of a deployment:
//
//	caltrain-router -deployment router.json
//	{"topology": {"map": "shards/shardmap.ctsm",
//	              "shards": {"0": ["replica-a:9000", "replica-b:9000"]},
//	              "write_quorum": 1, "repair": {"after": "15s"}}}
//
// Every request carries an X-Request-Id (inbound or generated) that the
// router forwards to the shard daemons it fans out to, so one ID ties a
// client call to its per-shard work in every daemon's -request-log. The
// router also records every request as a span tree (route, scatter, one
// span per shard attempt, the replica RPCs) and propagates trace
// context to the shard daemons W3C-traceparent-style, so a shard's own
// spans parent under the router's scatter span in one trace; head
// sampling (-trace-sample-rate), the bounded store (-trace-store), and
// the slow-trace threshold (-trace-slow) match caltrain-serve.
// -debug-addr opens a sidecar listener serving pprof, expvar, and
// GET /v1/debug/traces[/{id}].
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/obs"
	"caltrain/internal/serve"
	"caltrain/internal/shard"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-router:", err)
		os.Exit(1)
	}
}

// shardFlags accumulates repeated -shard ID=addr,addr flags.
type shardFlags map[int][]string

func (s shardFlags) String() string {
	parts := make([]string, 0, len(s))
	for id, addrs := range s {
		parts = append(parts, fmt.Sprintf("%d=%s", id, strings.Join(addrs, ",")))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func (s shardFlags) Set(v string) error {
	id, addrs, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want ID=addr[,addr...], got %q", v)
	}
	sid, err := strconv.Atoi(id)
	if err != nil || sid < 0 {
		return fmt.Errorf("bad shard id %q", id)
	}
	if _, dup := s[sid]; dup {
		return fmt.Errorf("shard %d given twice", sid)
	}
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty replica address for shard %d", sid)
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		s[sid] = append(s[sid], a)
	}
	return nil
}

func run(parent context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("caltrain-router", flag.ContinueOnError)
	shards := shardFlags{}
	var (
		mapPath   = fs.String("map", "shards/shardmap.ctsm", "shard map written by caltrain-shard")
		addr      = fs.String("addr", ":8790", "listen address")
		timeout   = fs.Duration("timeout", shard.DefaultShardTimeout, "per-shard call timeout (all replica attempts combined)")
		cooldown  = fs.Duration("cooldown", shard.DefaultReplicaCooldown, "base cooldown for a failed replica (grows exponentially)")
		maxBody   = fs.Int64("max-body", 8<<20, "request body size limit in bytes")
		maxBatch  = fs.Int("max-batch", 256, "queries per batch request limit")
		quorum    = fs.Int("write-quorum", 0, "replicas per shard that must ack an ingest batch (0 = majority)")
		respCache = fs.Int("response-cache", 0, "cache up to N hot single-query responses at the router, invalidated on writes to the owning shard (0 = off)")
		grace     = fs.Duration("grace", 10*time.Second, "shutdown drain timeout")
		buckets   = fs.String("latency-buckets", "", "comma-separated router latency bucket bounds as durations (e.g. 5ms,25ms,100ms,1s); empty = network-scale defaults")

		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar, and /v1/debug/traces on this sidecar host:port (empty = no debug listener; never the public address)")
		reqLog    = fs.Bool("request-log", false, "log one structured line per request: request ID, trace ID, status, duration, stage timings")
		slowQuery = fs.Duration("slow-query-threshold", 0, "warn about requests slower than this, even without -request-log (0 = disabled)")

		traceRate  = fs.Float64("trace-sample-rate", 1, "head-sampling probability for request traces, in [0,1] (0 = keep only slow/error traces)")
		traceStore = fs.Int("trace-store", 0, "in-memory trace store size behind /v1/debug/traces (0 = default, negative = no retention)")
		traceSlow  = fs.Duration("trace-slow", 0, "always store traces slower than this, even when not head-sampled (0 = disabled)")

		depPath        = fs.String("deployment", "", "deployment config file (JSON) with a topology block: shard map, replicas, quorum, repair in one document — conflicts with the topology flags")
		repair         = fs.Bool("repair", false, "enable the anti-entropy repair loop: drive degraded replicas through a /v1/repl/sync resync from a healthy same-shard peer and readmit them")
		repairAfter    = fs.Duration("repair-after", 0, "degradation streak before a repair starts (0 = default; implies -repair)")
		repairInterval = fs.Duration("repair-interval", 0, "repair loop health scan period (0 = default; implies -repair)")
	)
	fs.Var(shards, "shard", "shard replicas as ID=addr[,addr...]; repeat per shard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *repairAfter < 0 || *repairInterval < 0 {
		return fmt.Errorf("-repair-after and -repair-interval must be non-negative (0 means default)")
	}

	if *depPath != "" {
		// The config file declares the whole topology; a topology flag
		// alongside it would silently lose to (or fight with) the file.
		// Only the flags naming where the router runs are allowed.
		processFlags := map[string]bool{"addr": true, "grace": true, "deployment": true, "debug-addr": true}
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if !processFlags[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-%s conflicts with -deployment: the config file declares the topology", conflict)
		}
		cfg, err := serve.LoadConfig(*depPath)
		if err != nil {
			return err
		}
		plan, err := cfg.RouterPlan(slog.New(slog.NewTextHandler(os.Stderr, nil)))
		if err != nil {
			return err
		}
		built, err := serve.NewRouter(plan.Map, plan.Replicas, plan.Options...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "deployment config: %s\n", *depPath)
		da := plan.DebugAddr
		if *debugAddr != "" {
			da = *debugAddr
		}
		var traces *obs.TraceStore
		if plan.Tracer != nil {
			traces = plan.Tracer.Store()
		}
		return serveRouter(parent, out, built, plan.Map, da, traces, *addr, *grace)
	}

	mf, err := os.Open(*mapPath)
	if err != nil {
		return err
	}
	m, err := shard.LoadMap(mf)
	mf.Close()
	if err != nil {
		return err
	}
	replicas := make([][]shard.Replica, m.NumShards())
	for sid := range replicas {
		addrs, ok := shards[sid]
		if !ok {
			return fmt.Errorf("shard map has %d shards but -shard %d=... is missing", m.NumShards(), sid)
		}
		for _, a := range addrs {
			replicas[sid] = append(replicas[sid], shard.NewHTTPReplica(a, nil))
		}
	}
	for sid := range shards {
		if sid >= m.NumShards() {
			return fmt.Errorf("-shard %d given but the map has only %d shards", sid, m.NumShards())
		}
	}

	if *quorum < 0 {
		return fmt.Errorf("-write-quorum must be non-negative, got %d", *quorum)
	}
	if *slowQuery < 0 {
		return fmt.Errorf("-slow-query-threshold must be non-negative (0 disables the slow-query log)")
	}
	if *traceRate < 0 || *traceRate > 1 {
		return fmt.Errorf("-trace-sample-rate must be in [0,1], got %v", *traceRate)
	}
	if *traceSlow < 0 {
		return fmt.Errorf("-trace-slow must be non-negative (0 disables the slow-trace keep)")
	}
	tracer := obs.NewTracer(obs.TracerOptions{
		SampleRate: *traceRate,
		StoreSize:  *traceStore,
		SlowAlways: *traceSlow,
	})
	opts := []shard.RouterOption{
		shard.WithShardTimeout(*timeout),
		shard.WithReplicaCooldown(*cooldown),
		shard.WithRouterMaxBodyBytes(*maxBody),
		shard.WithRouterMaxBatch(*maxBatch),
		shard.WithWriteQuorum(*quorum),
		// Request and slow-query logs go to stderr, keeping stdout for
		// the daemon's own startup lines.
		shard.WithObservability(fingerprint.Observability{
			Component:          "router",
			Logger:             slog.New(slog.NewTextHandler(os.Stderr, nil)),
			RequestLog:         *reqLog,
			SlowQueryThreshold: *slowQuery,
			Tracer:             tracer,
		}),
	}
	if *respCache > 0 {
		opts = append(opts, shard.WithRouterResponseCache(*respCache))
	}
	if *buckets != "" {
		bounds, err := fingerprint.ParseLatencyBuckets(*buckets)
		if err != nil {
			return err
		}
		opts = append(opts, shard.WithRouterLatencyBuckets(bounds))
	}
	if *repair || set["repair-after"] || set["repair-interval"] {
		opts = append(opts, shard.WithRepair(shard.RepairOptions{
			After:    *repairAfter,
			Interval: *repairInterval,
			Logger:   slog.New(slog.NewTextHandler(os.Stderr, nil)),
		}))
	}
	// The topology assembles through the declarative serving layer, like
	// caltrain-serve: the router is a Deployment whose shards live in
	// other processes.
	built, err := serve.NewRouter(m, replicas, opts...)
	if err != nil {
		return err
	}
	return serveRouter(parent, out, built, m, *debugAddr, tracer.Store(), *addr, *grace)
}

// serveRouter opens the debug sidecar (when configured) and the public
// listener, then runs the built router until SIGINT/SIGTERM. Serve also
// runs the anti-entropy repair loop when the router was built with one.
func serveRouter(parent context.Context, out io.Writer, built *serve.Server, m *shard.Map, debugAddr string, traces *obs.TraceStore, addr string, grace time.Duration) error {
	ctx, stop := signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if debugAddr != "" {
		dl, err := serve.ListenDebug(debugAddr, traces)
		if err != nil {
			return err
		}
		defer dl.Close()
		fmt.Fprintf(out, "debug listener (pprof, expvar, traces) on %s\n", dl.Addr())
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "routing accountability queries on %s across %d shards (%s map; /v1 + legacy: POST /query, POST /query/batch, POST /ingest, GET /healthz, GET /stats, GET /meta)\n",
		l.Addr(), m.NumShards(), m.Strategy())
	if err := built.Serve(ctx, l, grace); err != nil {
		return err
	}
	fmt.Fprintln(out, "drained, bye")
	return nil
}
