// Command caltrain-shard splits one linkage database into per-label
// shards for distributed accountability serving: it writes N per-shard
// databases, optionally a pre-built index per shard, and the versioned
// shard map every daemon and the router load so label ownership always
// agrees.
//
//	caltrain-shard -db linkage.db -out shards/ -shards 4
//	caltrain-shard -db linkage.db -out shards/ -shards 4 -strategy range -index ivf
//
// Outputs in -out:
//
//	shard-000.db … shard-00N.db   per-shard linkage databases
//	shard-000.idx …               per-shard indexes (with -index flat|ivf|ivfpq)
//	shardmap.ctsm                 the label→shard assignment
//
// Each shard is then served by an ordinary caltrain-serve daemon
// (replicas run the same shard files on more hosts), and
// caltrain-router fans client batches out across them:
//
//	caltrain-serve  -db shards/shard-000.db -load-index shards/shard-000.idx -addr :9000
//	caltrain-router -map shards/shardmap.ctsm -shard 0=localhost:9000 …
//
// Strategies (-strategy): "hash" assigns labels by FNV-1a hash —
// stateless and uniform in expectation; "range" splits the observed
// labels into contiguous ranges balanced by entry count, which keeps
// related label IDs colocated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
	"caltrain/internal/serve"
	"caltrain/internal/shard"
)

// MapFileName is the shard-map file caltrain-shard writes into -out and
// caltrain-router loads with -map.
const MapFileName = "shardmap.ctsm"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-shard:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("caltrain-shard", flag.ContinueOnError)
	var (
		dbPath   = fs.String("db", "linkage.db", "linkage database to split")
		outDir   = fs.String("out", "shards", "output directory")
		nshards  = fs.Int("shards", 4, "number of shards")
		strategy = fs.String("strategy", "hash", "label assignment: hash or range (balanced by entry count)")
		kind     = fs.String("index", "", "also build a per-shard index: flat, ivf, or ivfpq (empty: none)")
		nlist    = fs.Int("nlist", 0, "IVF/IVFPQ lists per label (0 = auto ≈√n)")
		nprobe   = fs.Int("nprobe", 0, "IVF/IVFPQ lists probed per query (0 = auto)")
		iters    = fs.Int("iters", 0, "IVF/IVFPQ k-means iterations (0 = default)")
		seed     = fs.Uint64("seed", 42, "IVF/IVFPQ training seed")
		pqM      = fs.Int("pq-m", 0, "IVFPQ subquantizers (code bytes per entry, must divide the fingerprint dim; 0 = auto)")

		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this sidecar host:port while splitting (empty = no debug listener)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *debugAddr != "" {
		// Splitting and per-shard index training can run for minutes on a
		// big database; the sidecar makes them profileable like the daemons.
		dl, err := serve.ListenDebug(*debugAddr, nil)
		if err != nil {
			return err
		}
		defer dl.Close()
		fmt.Fprintf(out, "debug listener (pprof, expvar) on %s\n", dl.Addr())
	}
	if *nshards < 1 {
		return fmt.Errorf("-shards must be positive, got %d", *nshards)
	}
	// Resolve -index through the one string-to-backend seam; only
	// persistable backends make sense here (the linear scan is the
	// database itself — there is no index file to write).
	var spec serve.BackendSpec
	if *kind != "" {
		var err error
		spec, err = serve.ParseBackend(*kind, index.IVFPQOptions{
			IVFOptions: index.IVFOptions{Nlist: *nlist, Nprobe: *nprobe, Iters: *iters, Seed: *seed},
			M:          *pqM,
		})
		if err != nil {
			return err
		}
		if _, linear := spec.(serve.LinearSpec); linear {
			return fmt.Errorf("-index linear has nothing to persist (want flat, ivf, or ivfpq)")
		}
	}

	dbf, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	db, err := fingerprint.LoadDB(dbf)
	dbf.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "linkage database: %d entries, %d labels, fingerprint dim %d\n",
		db.Len(), len(db.Labels()), db.Dim())

	m, err := buildMap(db, *strategy, *nshards)
	if err != nil {
		return err
	}
	parts, err := shard.SplitDB(db, m)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*outDir, MapFileName), m.Save); err != nil {
		return err
	}
	for sid, part := range parts {
		dbName := shardFile(sid, "db")
		if err := writeFile(filepath.Join(*outDir, dbName), part.Save); err != nil {
			return err
		}
		line := fmt.Sprintf("shard %d: %d entries, %d labels → %s", sid, part.Len(), len(part.Labels()), dbName)
		if spec != nil {
			idxName := shardFile(sid, "idx")
			started := time.Now()
			// BuildShardBackend is the same empty-shard policy Deployment
			// uses in-process: IVF cannot train on nothing, so an empty
			// shard gets an (empty) flat index and the documented
			// -load-index startup still works.
			searcher, err := serve.BuildShardBackend(spec, part)
			if err != nil {
				return fmt.Errorf("shard %d index: %w", sid, err)
			}
			if err := writeFile(filepath.Join(*outDir, idxName), func(w io.Writer) error {
				return index.Save(w, searcher)
			}); err != nil {
				return err
			}
			line += fmt.Sprintf(" + %s (%s, built in %v)", idxName, searcher.Kind(), time.Since(started).Round(time.Millisecond))
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintf(out, "shard map (%s, %d shards) → %s\n", m.Strategy(), m.NumShards(), filepath.Join(*outDir, MapFileName))
	return nil
}

func buildMap(db *fingerprint.DB, strategy string, nshards int) (*shard.Map, error) {
	switch strategy {
	case "hash":
		return shard.NewHashMap(nshards)
	case "range":
		counts := make(map[int]int)
		for _, y := range db.Labels() {
			counts[y] = len(db.ClassIndex(y))
		}
		return shard.RangeMapForCounts(counts, nshards)
	default:
		return nil, fmt.Errorf("unknown strategy %q (want hash or range)", strategy)
	}
}

// shardFile names shard sid's artifact with the given extension, the
// layout caltrain-serve and caltrain-router point at.
func shardFile(sid int, ext string) string { return fmt.Sprintf("shard-%03d.%s", sid, ext) }

func writeFile(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
