package main

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
	"caltrain/internal/shard"
)

func writeTestDB(t *testing.T, n, labels int) string {
	t.Helper()
	db, err := fingerprint.NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, uint64(n)))
	for i, f := range index.SynthFingerprints(rng, n, 8, 6, 0.2) {
		if err := db.Add(fingerprint.Linkage{F: f, Y: i % labels, S: "p1"}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "linkage.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardSplitEndToEnd splits a database, then verifies the written
// artifacts: the map reloads and owns every shard's labels, the shard
// DBs cover the original exactly, and the per-shard indexes load and
// match their DBs.
func TestShardSplitEndToEnd(t *testing.T) {
	dbPath := writeTestDB(t, 360, 9)
	outDir := filepath.Join(t.TempDir(), "shards")
	var out bytes.Buffer
	err := run([]string{"-db", dbPath, "-out", outDir, "-shards", "3", "-index", "ivf", "-nlist", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shard map (hash, 3 shards)") {
		t.Fatalf("missing summary; output:\n%s", out.String())
	}

	mf, err := os.Open(filepath.Join(outDir, MapFileName))
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.LoadMap(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 3 {
		t.Fatalf("map shards %d", m.NumShards())
	}

	total := 0
	for sid := 0; sid < 3; sid++ {
		f, err := os.Open(filepath.Join(outDir, shardFile(sid, "db")))
		if err != nil {
			t.Fatal(err)
		}
		db, err := fingerprint.LoadDB(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		total += db.Len()
		for _, y := range db.Labels() {
			if m.Shard(y) != sid {
				t.Fatalf("shard %d holds label %d owned by %d", sid, y, m.Shard(y))
			}
		}
		xf, err := os.Open(filepath.Join(outDir, shardFile(sid, "idx")))
		if err != nil {
			t.Fatal(err)
		}
		s, err := index.Load(xf)
		xf.Close()
		if err != nil {
			t.Fatal(err)
		}
		// Empty shards get a flat index (IVF cannot train on nothing) so
		// the documented -load-index startup works for every shard.
		wantKind := "ivf"
		if db.Len() == 0 {
			wantKind = "flat"
		}
		if s.Kind() != wantKind || s.Len() != db.Len() || s.Dim() != db.Dim() {
			t.Fatalf("shard %d index: kind %s, %d entries (db %d)", sid, s.Kind(), s.Len(), db.Len())
		}
	}
	if total != 360 {
		t.Fatalf("shard DBs cover %d of 360 entries", total)
	}
}

// TestShardRangeStrategy balances contiguous label ranges by entries.
func TestShardRangeStrategy(t *testing.T) {
	dbPath := writeTestDB(t, 300, 10)
	outDir := filepath.Join(t.TempDir(), "shards")
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-out", outDir, "-shards", "5", "-strategy", "range"}, &out); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(filepath.Join(outDir, MapFileName))
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.LoadMap(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Strategy() != shard.StrategyRange {
		t.Fatalf("strategy %v", m.Strategy())
	}
	// Uniform 30 entries per label over 10 labels and 5 shards: each
	// shard owns exactly 2 contiguous labels.
	for y := 0; y < 10; y++ {
		if got, want := m.Shard(y), y/2; got != want {
			t.Fatalf("range map Shard(%d) = %d, want %d", y, got, want)
		}
	}
}

func TestShardRejectsBadFlags(t *testing.T) {
	dbPath := writeTestDB(t, 30, 3)
	for _, args := range [][]string{
		{"-db", dbPath, "-shards", "0"},
		{"-db", dbPath, "-strategy", "modulo"},
		{"-db", dbPath, "-index", "linear"},
		{"-db", filepath.Join(t.TempDir(), "missing.db")},
	} {
		if err := run(append(args, "-out", t.TempDir()), &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
