// Command caltrain-train runs a complete confidential collaborative
// training session on the synthetic CIFAR-10 stand-in: participants seal
// their shards, attest the training enclave, provision keys, and the
// partitioned model is trained and released. The trained model and the
// fingerprint linkage database are written to disk for caltrain-query.
//
// Usage:
//
//	caltrain-train -arch 10L -epochs 12 -split 2 -out model.ctnn -db linkage.db
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"caltrain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		arch     = flag.String("arch", "10L", `architecture: "10L" (Table I) or "18L" (Table II)`)
		scale    = flag.Int("scale", 4, "architecture scale divisor (1 = exact paper network)")
		split    = flag.Int("split", 2, "FrontNet size (layers inside the enclave)")
		epochs   = flag.Int("epochs", 12, "training epochs")
		batch    = flag.Int("batch", 32, "mini-batch size")
		parties  = flag.Int("participants", 4, "number of participants")
		perClass = flag.Int("per-class", 40, "training images per class")
		seed     = flag.Uint64("seed", 7, "session seed")
		outPath  = flag.String("out", "model.ctnn", "released model output path (alice's copy, decrypted)")
		dbPath   = flag.String("db", "linkage.db", "fingerprint linkage database output path")
	)
	flag.Parse()

	var model caltrain.ModelConfig
	switch *arch {
	case "10L":
		model = caltrain.TableI(*scale)
	case "18L":
		model = caltrain.TableII(*scale)
	default:
		return fmt.Errorf("unknown architecture %q", *arch)
	}

	aug := caltrain.DefaultAugmentation()
	cfg := caltrain.SessionConfig{
		Model:     model,
		Split:     *split,
		Epochs:    *epochs,
		BatchSize: *batch,
		SGD:       caltrain.DefaultSGD(),
		Augment:   &aug,
		Seed:      *seed,
	}
	sess, err := caltrain.NewSession(cfg)
	if err != nil {
		return err
	}

	all := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 10, PerClass: *perClass + 10, Seed: *seed})
	train, test := all.Split(float64(10)/float64(*perClass+10), rand.New(rand.NewPCG(*seed, 1)))
	shards := train.PartitionAmong(*parties)
	var first *caltrain.Participant
	for i, shard := range shards {
		p := caltrain.NewParticipant(fmt.Sprintf("participant-%c", 'A'+i), shard, *seed+uint64(i))
		n, err := sess.AddParticipant(p)
		if err != nil {
			return err
		}
		fmt.Printf("%s: attested enclave, provisioned key, %d sealed records accepted\n", p.ID, n)
		if first == nil {
			first = p
		}
	}

	for e := 1; e <= *epochs; e++ {
		st, err := sess.TrainEpoch()
		if err != nil {
			return err
		}
		top1, top2, err := sess.Evaluate(test, 2)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %2d: loss %.4f  top1 %5.1f%%  top2 %5.1f%%\n", st.Epoch, st.MeanLoss, 100*top1, 100*top2)
	}

	rm, err := sess.Release(first.ID)
	if err != nil {
		return err
	}
	net, modelCfg, err := first.AssembleModel(rm)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := caltrain.SaveModel(f, modelCfg, net); err != nil {
		return err
	}
	fmt.Printf("released model (decrypted by %s) written to %s\n", first.ID, *outPath)

	db, err := sess.Fingerprint()
	if err != nil {
		return err
	}
	dbf, err := os.Create(*dbPath)
	if err != nil {
		return err
	}
	defer dbf.Close()
	if err := db.Save(dbf); err != nil {
		return err
	}
	fmt.Printf("linkage database (%d entries, dim %d) written to %s\n", db.Len(), db.Dim(), *dbPath)
	return nil
}
