// Command caltrain-query serves or queries the accountability linkage
// database (the query stage of Figure 2).
//
// Serve mode exposes the HTTP query service over a database produced by
// caltrain-train:
//
//	caltrain-query -serve -db linkage.db -addr :8791
//
// Query mode investigates one test input: it loads the released model,
// fingerprints the input (by index into a freshly generated test set),
// and prints the closest same-class training instances with provenance:
//
//	caltrain-query -db linkage.db -model model.ctnn -index 3 -k 9
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"time"

	"caltrain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-query:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dbPath    = flag.String("db", "linkage.db", "linkage database path")
		serve     = flag.Bool("serve", false, "serve the query API over HTTP")
		addr      = flag.String("addr", ":8791", "listen address in serve mode")
		modelPath = flag.String("model", "model.ctnn", "released model path (query mode)")
		index     = flag.Int("index", 0, "test-set record index to investigate (query mode)")
		k         = flag.Int("k", 9, "number of neighbours (the paper's figures show 9)")
		seed      = flag.Uint64("seed", 7, "seed of the session whose test data to regenerate")
		perClass  = flag.Int("per-class", 40, "per-class size of the original session")
	)
	flag.Parse()

	dbf, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	db, err := caltrain.LoadLinkageDB(dbf)
	dbf.Close()
	if err != nil {
		return err
	}
	fmt.Printf("linkage database: %d entries, fingerprint dim %d\n", db.Len(), db.Dim())

	if *serve {
		srv := &http.Server{
			Addr:              *addr,
			Handler:           caltrain.NewLinearQueryService(db).Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		fmt.Printf("serving accountability queries on %s (/v1 + legacy: POST /query, POST /query/batch, GET /healthz, GET /stats, GET /meta)\n", *addr)
		return srv.ListenAndServe()
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	_, net, err := caltrain.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	all := caltrain.SynthCIFAR(caltrain.DataOptions{Classes: 10, PerClass: *perClass + 10, Seed: *seed})
	_, test := all.Split(float64(10)/float64(*perClass+10), rand.New(rand.NewPCG(*seed, 1)))
	if *index < 0 || *index >= test.Len() {
		return fmt.Errorf("index %d out of range for %d test records", *index, test.Len())
	}
	rec := test.Records[*index]
	f, label, err := caltrain.QueryFingerprint(net, rec.Image)
	if err != nil {
		return err
	}
	fmt.Printf("test record %d: true label %d, predicted %d", *index, rec.Label, label)
	if rec.Label != label {
		fmt.Printf("  << misprediction, investigating")
	}
	fmt.Println()
	matches, err := db.Query(f, label, *k)
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %10s %-16s %s\n", "#", "L2 dist", "source", "content hash")
	for i, m := range matches {
		fmt.Printf("%-4d %10.4f %-16s %x…\n", i+1, m.Distance, m.Source, m.Hash[:8])
	}
	fmt.Println("demand the listed sources disclose these instances; verify hashes before forensic analysis (§IV-C)")
	return nil
}
