// Command caltrain-assess runs the dual-network information-exposure
// assessment (§IV-B) on a saved model checkpoint: it scores every layer's
// intermediate representations against an oracle and recommends the
// FrontNet partition that keeps exposed layers inside the enclave.
//
// Usage:
//
//	caltrain-assess -model model.ctnn -oracle oracle.ctnn -probes 8
//
// Without -oracle, an oracle is trained on freshly generated data (handy
// for demos; real participants use their own well-trained model).
package main

import (
	"flag"
	"fmt"
	"os"

	"caltrain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-assess:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "model.ctnn", "model checkpoint to assess (IRGenNet)")
		oraclePath = flag.String("oracle", "", "oracle model (IRValNet); trained ad hoc when empty")
		probes     = flag.Int("probes", 6, "number of probe inputs")
		maxMaps    = flag.Int("max-maps", 6, "feature maps scored per layer")
		relax      = flag.Float64("relax", 1.0, "threshold as a fraction of the uniform bound δµ")
		seed       = flag.Uint64("seed", 7, "probe/oracle data seed")
	)
	flag.Parse()

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	cfg, gen, err := caltrain.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	fmt.Printf("assessing %s (%d layers)\n", cfg.Name, gen.NumLayers())

	probeData := caltrain.SynthCIFAR(caltrain.DataOptions{
		Classes: cfg.Classes, H: cfg.InH, W: cfg.InW, PerClass: 24, Seed: *seed,
	})

	var oracle *caltrain.Network
	if *oraclePath != "" {
		of, err := os.Open(*oraclePath)
		if err != nil {
			return err
		}
		_, oracle, err = caltrain.LoadModel(of)
		of.Close()
		if err != nil {
			return err
		}
	} else {
		fmt.Println("no oracle provided; training one ad hoc (participants use their own)")
		oracle, err = caltrain.BuildModel(cfg, *seed+1)
		if err != nil {
			return err
		}
		if err := caltrain.TrainLocal(oracle, probeData, 8, 32, caltrain.DefaultSGD(), *seed+2); err != nil {
			return err
		}
	}

	rep, err := caltrain.AssessExposure(gen, oracle, probeData, *probes,
		caltrain.ExposureOptions{MaxMapsPerLayer: *maxMaps})
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	split := rep.OptimalSplit(*relax)
	fmt.Printf("recommended FrontNet: enclose the first %d layers (threshold %.2f·δµ)\n", split, *relax)
	return nil
}
