package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/obs"
	"caltrain/internal/serve"
)

func TestParseSLO(t *testing.T) {
	budgets, err := parseSLO("p99<50ms, errors<0.1%")
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 2 {
		t.Fatalf("want 2 budgets, got %d", len(budgets))
	}
	if budgets[0].metric != "p99" || budgets[0].latency != 50*time.Millisecond {
		t.Fatalf("p99 budget parsed as %+v", budgets[0])
	}
	if budgets[1].metric != "errors" || budgets[1].errorRate != 0.001 {
		t.Fatalf("errors budget parsed as %+v", budgets[1])
	}

	if b, err := parseSLO("errors<0.25"); err != nil || b[0].errorRate != 0.25 {
		t.Fatalf("bare fraction: %+v, %v", b, err)
	}
	for _, bad := range []string{"", "p99", "p42<1ms", "p99<banana", "p99<-5ms", "errors<oops"} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(ds, 50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(ds, 99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("empty p99 = %v", got)
	}
	if got := percentile(ds[:1], 1); got != time.Millisecond {
		t.Fatalf("single-sample p1 = %v", got)
	}
}

// testDeployment builds a 2-shard in-process deployment with a volatile
// write path and serves it over httptest.
func testDeployment(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	db, err := fingerprint.NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 200; i++ {
		f := make(fingerprint.Fingerprint, 8)
		for j := range f {
			f[j] = rng.Float32()
		}
		if err := db.Add(fingerprint.Linkage{F: f, Y: i % 4, S: "seed"}); err != nil {
			t.Fatal(err)
		}
	}
	built, err := serve.Deployment{Shards: 2, VolatileWrites: true}.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(built.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { built.Close() })
	return built, srv
}

// TestRunSmoke drives the loadgen against a real 2-shard deployment and
// checks both halves of the loop: the run meets a loose SLO, and the
// traffic left retrievable traces behind GET /v1/debug/traces — the
// same check CI's smoke job performs cross-process.
func TestRunSmoke(t *testing.T) {
	built, srv := testDeployment(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", srv.URL,
		"-duration", "500ms",
		"-qps", "0",
		"-concurrency", "2",
		"-batch", "4",
		"-write-ratio", "0.2",
		"-slo", "p99<10s,errors<50%",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "latency: p50=") {
		t.Fatalf("report missing latency line:\n%s", out.String())
	}

	debug := httptest.NewServer(obs.DebugHandler(built.TraceStore()))
	defer debug.Close()
	resp, err := http.Get(debug.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces: status %d", resp.StatusCode)
	}
	var listing struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) == 0 {
		t.Fatal("loadgen traffic left no traces in the deployment's store")
	}
}

// TestRunSLOViolation: an impossible latency budget must fail the run
// (the CI gate relies on the non-zero exit).
func TestRunSLOViolation(t *testing.T) {
	_, srv := testDeployment(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", srv.URL,
		"-duration", "200ms",
		"-qps", "0",
		"-concurrency", "1",
		"-slo", "p99<1ns",
	}, &out)
	if err == nil {
		t.Fatalf("impossible SLO passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "SLO violated") {
		t.Fatalf("want SLO violation error, got: %v", err)
	}
}

// TestRunBadFlags: invalid flag combinations are rejected before any
// traffic is sent.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-duration", "0s"},
		{"-qps", "-1"},
		{"-batch", "0"},
		{"-write-ratio", "1.5"},
		{"-k", "0"},
		{"-concurrency", "0"},
		{"-slo", "p42<1ms"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
