// Command caltrain-loadgen drives synthetic accountability traffic at a
// caltrain-serve daemon or caltrain-router and reports the latency
// distribution it observed — the closed-loop half of the observability
// story: traces and metrics tell you what the deployment did, loadgen
// tells you whether that meets the budget you promised.
//
//	caltrain-loadgen -addr http://localhost:8789 -duration 30s -qps 200 \
//	    -batch 8 -write-ratio 0.1 -slo 'p99<50ms,errors<0.1%'
//
// Queries are random unit-norm fingerprints with labels drawn uniformly
// from -labels, shaped by -batch (1 = POST /v1/query, >1 = POST
// /v1/query/batch) and -k; -write-ratio diverts that fraction of
// requests to POST /v1/ingest (the target needs a write path). -qps is
// the total offered rate across -concurrency workers (0 = unthrottled).
// The fingerprint dimensionality is discovered from GET /v1/stats, or
// forced with -dim.
//
// The report gives request count, throughput, error rate, and
// p50/p95/p99/max latency. -slo turns the run into a gate: a
// comma-separated budget like 'p99<50ms,errors<0.1%' is checked against
// the observed distribution and any violation makes the process exit
// non-zero — suitable for CI smoke jobs and canary pipelines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"caltrain/internal/fingerprint"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-loadgen:", err)
		os.Exit(1)
	}
}

// sloBudget is one parsed term of a -slo string: a latency percentile
// bound ("p99" < 50ms) or an error-rate bound ("errors" < 0.001).
type sloBudget struct {
	metric    string        // "p50", "p95", "p99", or "errors"
	latency   time.Duration // bound when metric is a percentile
	errorRate float64       // bound (fraction) when metric is "errors"
}

func (b sloBudget) String() string {
	if b.metric == "errors" {
		return fmt.Sprintf("errors<%.3g%%", b.errorRate*100)
	}
	return fmt.Sprintf("%s<%s", b.metric, b.latency)
}

// parseSLO parses a budget like "p99<50ms,errors<0.1%". Percentile
// bounds take Go durations; the error bound takes a percentage ("0.1%")
// or a bare fraction ("0.001").
func parseSLO(s string) ([]sloBudget, error) {
	var budgets []sloBudget
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		metric, bound, ok := strings.Cut(term, "<")
		if !ok {
			return nil, fmt.Errorf("SLO term %q: want metric<bound", term)
		}
		metric, bound = strings.TrimSpace(metric), strings.TrimSpace(bound)
		switch metric {
		case "p50", "p95", "p99":
			d, err := time.ParseDuration(bound)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("SLO term %q: bad duration %q", term, bound)
			}
			budgets = append(budgets, sloBudget{metric: metric, latency: d})
		case "errors":
			frac := 1.0
			if cut, ok := strings.CutSuffix(bound, "%"); ok {
				frac = 0.01
				bound = cut
			}
			var v float64
			if _, err := fmt.Sscanf(bound, "%g", &v); err != nil || v < 0 {
				return nil, fmt.Errorf("SLO term %q: bad rate %q", term, bound)
			}
			budgets = append(budgets, sloBudget{metric: "errors", errorRate: v * frac})
		default:
			return nil, fmt.Errorf("SLO term %q: unknown metric %q (want p50, p95, p99, or errors)", term, metric)
		}
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("empty SLO")
	}
	return budgets, nil
}

// percentile returns the p-th percentile (0 < p <= 100) of an ascending
// latency slice using nearest-rank, or 0 for an empty slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// result aggregates one worker's observations.
type result struct {
	latencies []time.Duration // successful requests only
	errors    int
}

func run(parent context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("caltrain-loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://localhost:8789", "base URL of the daemon or router under load")
		duration    = fs.Duration("duration", 10*time.Second, "how long to drive traffic")
		qps         = fs.Float64("qps", 100, "total offered request rate across all workers (0 = unthrottled)")
		batch       = fs.Int("batch", 1, "queries per request: 1 = POST /query, >1 = POST /query/batch")
		writeRatio  = fs.Float64("write-ratio", 0, "fraction of requests sent as POST /ingest writes, in [0,1]")
		k           = fs.Int("k", 5, "neighbours per query")
		dim         = fs.Int("dim", 0, "fingerprint dimensionality (0 = discover via GET /stats)")
		labels      = fs.Int("labels", 10, "label space size for random queries and writes")
		concurrency = fs.Int("concurrency", 8, "concurrent worker connections")
		seed        = fs.Uint64("seed", 1, "workload RNG seed")
		slo         = fs.String("slo", "", "exit non-zero unless the run meets this budget, e.g. 'p99<50ms,errors<0.1%'")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", *duration)
	}
	if *qps < 0 {
		return fmt.Errorf("-qps must be non-negative, got %v", *qps)
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be at least 1, got %d", *batch)
	}
	if *writeRatio < 0 || *writeRatio > 1 {
		return fmt.Errorf("-write-ratio must be in [0,1], got %v", *writeRatio)
	}
	if *k < 1 {
		return fmt.Errorf("-k must be at least 1, got %d", *k)
	}
	if *labels < 1 {
		return fmt.Errorf("-labels must be at least 1, got %d", *labels)
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be at least 1, got %d", *concurrency)
	}
	var budgets []sloBudget
	if *slo != "" {
		var err error
		if budgets, err = parseSLO(*slo); err != nil {
			return err
		}
	}

	client := fingerprint.NewClient(*addr, nil)
	if *dim == 0 {
		stats, err := client.StatsCtx(parent)
		if err != nil {
			return fmt.Errorf("discovering dimensionality from %s/stats: %w", *addr, err)
		}
		*dim = stats.Dim
	}
	if *dim < 1 {
		return fmt.Errorf("-dim must be at least 1, got %d", *dim)
	}

	// Pace with a shared ticker the workers drain: the offered rate is
	// global, not per worker, and a stalled target sheds load instead of
	// queueing it (ticker ticks drop when nobody is receiving).
	var pace <-chan time.Time
	if *qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *qps))
		defer t.Stop()
		pace = t.C
	}

	ctx, cancel := context.WithTimeout(parent, *duration)
	defer cancel()
	start := time.Now()
	results := make([]result, *concurrency)
	var wg sync.WaitGroup
	for w := range *concurrency {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(w)))
			res := &results[w]
			for {
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				err := oneRequest(ctx, client, rng, *dim, *labels, *batch, *k, *writeRatio)
				if ctx.Err() != nil {
					return // shutdown race, not a target failure
				}
				if err != nil {
					res.errors++
					continue
				}
				res.latencies = append(res.latencies, time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errors := 0
	for i := range results {
		all = append(all, results[i].latencies...)
		errors += results[i].errors
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := len(all) + errors
	if total == 0 {
		return fmt.Errorf("no requests completed in %v against %s", *duration, *addr)
	}
	errRate := float64(errors) / float64(total)
	p50, p95, p99 := percentile(all, 50), percentile(all, 95), percentile(all, 99)
	var max time.Duration
	if len(all) > 0 {
		max = all[len(all)-1]
	}
	fmt.Fprintf(out, "loadgen: %d requests in %.1fs (%.1f req/s), %d errors (%.2f%%)\n",
		total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), errors, errRate*100)
	fmt.Fprintf(out, "latency: p50=%s p95=%s p99=%s max=%s\n", p50, p95, p99, max)

	var violations []string
	for _, b := range budgets {
		observed, ok := "", true
		switch b.metric {
		case "errors":
			observed = fmt.Sprintf("%.2f%%", errRate*100)
			ok = errRate < b.errorRate
		default:
			got := map[string]time.Duration{"p50": p50, "p95": p95, "p99": p99}[b.metric]
			observed = got.String()
			ok = got < b.latency
		}
		verdict := "OK"
		if !ok {
			verdict = "VIOLATED"
			violations = append(violations, fmt.Sprintf("%s (observed %s)", b, observed))
		}
		fmt.Fprintf(out, "slo: %s %s (observed %s)\n", b, verdict, observed)
	}
	if len(violations) > 0 {
		return fmt.Errorf("SLO violated: %s", strings.Join(violations, "; "))
	}
	return nil
}

// oneRequest issues a single read or write against the target, shaped
// by the workload flags.
func oneRequest(ctx context.Context, client *fingerprint.Client, rng *rand.Rand, dim, labels, batch, k int, writeRatio float64) error {
	if writeRatio > 0 && rng.Float64() < writeRatio {
		entries := make([]fingerprint.IngestEntry, batch)
		for i := range entries {
			entries[i] = fingerprint.IngestEntry{
				Fingerprint: randomFingerprint(rng, dim),
				Label:       rng.IntN(labels),
				Source:      "loadgen",
			}
		}
		resp, err := client.IngestCtx(ctx, entries)
		if err != nil {
			return err
		}
		// A routed ingest reports quorum failure inside a 200 body;
		// entries that reached no quorum are not durable and must count
		// against the error budget.
		if resp.Failed > 0 {
			return fmt.Errorf("ingest: %d of %d entries failed quorum", resp.Failed, len(entries))
		}
		return nil
	}
	if batch == 1 {
		_, err := client.QueryCtx(ctx, randomFingerprint(rng, dim), rng.IntN(labels), k)
		return err
	}
	reqs := make([]fingerprint.QueryRequest, batch)
	for i := range reqs {
		reqs[i] = fingerprint.QueryRequest{
			Fingerprint: randomFingerprint(rng, dim),
			Label:       rng.IntN(labels),
			K:           k,
		}
	}
	_, err := client.QueryBatchCtx(ctx, reqs)
	return err
}

// randomFingerprint returns a random unit-norm vector — the same shape
// real fingerprints have after the service's normalization.
func randomFingerprint(rng *rand.Rand, dim int) []float32 {
	f := make([]float32, dim)
	var norm float64
	for i := range f {
		v := rng.NormFloat64()
		f[i] = float32(v)
		norm += v * v
	}
	if norm == 0 {
		f[0] = 1
		return f
	}
	scale := float32(1 / math.Sqrt(norm))
	for i := range f {
		f[i] *= scale
	}
	return f
}
