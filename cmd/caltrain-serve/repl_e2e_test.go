package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"caltrain/internal/cluster"
	"caltrain/internal/fingerprint"
	"caltrain/internal/shard"
)

// freeAddr reserves a loopback port and releases it so a daemon can be
// restarted on the same address — the router's replica list points at
// the address, so a killed replica must come back where it died.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitReplState polls a daemon's /v1/repl/status until the sync state
// machine reports want, returning the final status.
func waitReplState(t *testing.T, base, want string) *fingerprint.ReplStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		st, err := cluster.SyncStatus(ctx, nil, base)
		if err == nil && st.State == want {
			return st
		}
		select {
		case <-ctx.Done():
			t.Fatalf("replica %s never reached %q (last: %+v, err %v)", base, want, st, err)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// routerStats fetches and decodes the router's /v1/stats.
func routerStats(t *testing.T, routerURL string) shard.StatsResponse {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st shard.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReplicationKillAndResyncEndToEnd is the self-healing acceptance
// test: a 2-replica shard (each replica a real daemon process with its
// own WAL, B following A) behind a repair-enabled router with write
// quorum 1. Replica B is SIGKILLed under sustained ingest+query load —
// quorum writes must never fail — then restarted, and the router's
// anti-entropy loop must drive it back to live and readmit it. After
// readmission B serves, from its own index, every linkage acknowledged
// while it was dead.
func TestReplicationKillAndResyncEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	seedPath := writeTestDB(t, 120)

	// Replica A: replication source (no peer — live from the start).
	dirA := t.TempDir()
	copyFile(t, seedPath, filepath.Join(dirA, "linkage.db"))
	a := spawnDaemon(t,
		"-db", filepath.Join(dirA, "linkage.db"), "-wal", filepath.Join(dirA, "wal"),
		"-addr", "127.0.0.1:0", "-index", "flat", "-repl",
	)
	baseA := "http://" + waitForAddr(t, a.out)
	waitHealthy(t, fingerprint.NewClient(baseA, nil))

	// Replica B: follows A, on a reserved address it can be reborn on.
	dirB := t.TempDir()
	copyFile(t, seedPath, filepath.Join(dirB, "linkage.db"))
	addrB := freeAddr(t)
	baseB := "http://" + addrB
	spawnB := func() *daemon {
		return spawnDaemon(t,
			"-db", filepath.Join(dirB, "linkage.db"), "-wal", filepath.Join(dirB, "wal"),
			"-addr", addrB, "-index", "flat", "-repl-peer", baseA,
		)
	}
	b := spawnB()
	waitForAddr(t, b.out)
	waitHealthy(t, fingerprint.NewClient(baseB, nil))
	waitReplState(t, baseB, "live")

	// The router: write quorum 1 (a majority of 2 would make every
	// outage write fail — the whole point is staying available), a
	// cooldown far longer than the test so the read path cannot quietly
	// readmit B behind the repair loop's back, and a fast repair cadence.
	m, err := shard.NewHashMap(1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter(m, [][]shard.Replica{{
		shard.NewHTTPReplica(baseA, nil),
		shard.NewHTTPReplica(baseB, nil),
	}},
		shard.WithWriteQuorum(1),
		shard.WithReplicaCooldown(time.Minute),
		shard.WithRepair(shard.RepairOptions{
			After:       300 * time.Millisecond,
			Interval:    100 * time.Millisecond,
			Poll:        25 * time.Millisecond,
			SyncTimeout: 20 * time.Second,
			Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.RunRepairLoop(ctx)
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()
	routerClient := fingerprint.NewClient(routerSrv.URL, nil)

	// Each generated entry is far from the seed cluster and from every
	// other generated entry, so it is its own exact nearest neighbour —
	// the strongest possible "this replica really has it" probe.
	next := 0
	gen := func(n int, source string) []fingerprint.IngestEntry {
		entries := make([]fingerprint.IngestEntry, n)
		for i := range entries {
			f := make([]float32, 8)
			f[next%8] = 7 + float32(next)
			entries[i] = fingerprint.IngestEntry{Fingerprint: f, Label: next % 3, Source: source}
			next++
		}
		return entries
	}

	// Phase 1: both replicas up — a routed batch lands on both.
	pre := gen(6, "pre-outage")
	resp, err := routerClient.Ingest(pre)
	if err != nil || resp.Accepted != len(pre) || resp.Failed != 0 || len(resp.DegradedReplicas) != 0 {
		t.Fatalf("pre-outage ingest: %+v, %v", resp, err)
	}

	// Phase 2: SIGKILL B, then sustain ingest and query load through the
	// router. Every write must be acknowledged: quorum 1 is satisfiable
	// by A alone.
	b.sigkill(t)
	var outage []fingerprint.IngestEntry
	for round := 0; round < 4; round++ {
		batch := gen(3, "outage")
		resp, err := routerClient.Ingest(batch)
		if err != nil || resp.Accepted != len(batch) || resp.Failed != 0 {
			t.Fatalf("outage round %d: quorum write failed: %+v, %v", round, resp, err)
		}
		outage = append(outage, batch...)
		out, err := routerClient.Query(batch[0].Fingerprint, batch[0].Label, 1)
		if err != nil || len(out.Matches) != 1 {
			t.Fatalf("outage round %d: routed query failed: %+v, %v", round, out, err)
		}
	}

	// Phase 3: restart B on its old address. Its own startup sync plus
	// the router's repair loop (nudge, poll to live, readmit) must bring
	// it back without any operator action.
	b2 := spawnB()
	waitForAddr(t, b2.out)

	deadline := time.Now().Add(30 * time.Second)
	for routerStats(t, routerSrv.URL).Repair == nil ||
		routerStats(t, routerSrv.URL).Repair.Succeeded == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair loop never drove a successful resync: %+v", routerStats(t, routerSrv.URL).Repair)
		}
		time.Sleep(25 * time.Millisecond)
	}
	stB := waitReplState(t, baseB, "live")
	if stB.LastError != "" {
		t.Fatalf("resynced replica reports error: %+v", stB)
	}

	// The sync state is observable as a metric, live == 3.
	metricsResp, err := http.Get(baseB + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "caltrain_replica_sync_state 3") {
		t.Fatalf("replica metrics do not report live sync state:\n%s", blob)
	}

	// B serves every linkage acked during (and before) the outage, from
	// its own index, at distance zero.
	clientB := fingerprint.NewClient(baseB, nil)
	waitHealthy(t, clientB)
	st, err := clientB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := 120 + len(pre) + len(outage); st.Entries != want {
		t.Fatalf("resynced replica serves %d entries, want %d", st.Entries, want)
	}
	for i, e := range append(append([]fingerprint.IngestEntry(nil), pre...), outage...) {
		out, err := clientB.Query(e.Fingerprint, e.Label, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Matches) != 1 || out.Matches[0].Source != e.Source || out.Matches[0].Distance > 1e-6 {
			t.Fatalf("resynced replica entry %d (%s): %+v", i, e.Source, out.Matches)
		}
	}

	// And the shard as a whole is healthy again: routed traffic flows.
	single, err := routerClient.Query(outage[0].Fingerprint, outage[0].Label, 1)
	if err != nil || len(single.Matches) != 1 || single.Matches[0].Source != "outage" {
		t.Fatalf("routed query after repair: %+v, %v", single, err)
	}
}

// TestReplicationEmptyReplicaJoins: a brand-new replica with no database
// file at all joins the cluster purely over /v1/repl/* — snapshot
// bootstrap, WAL catchup, live — and serves everything the source holds.
func TestReplicationEmptyReplicaJoins(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	seedPath := writeTestDB(t, 90)
	dirA := t.TempDir()
	copyFile(t, seedPath, filepath.Join(dirA, "linkage.db"))
	a := spawnDaemon(t,
		"-db", filepath.Join(dirA, "linkage.db"), "-wal", filepath.Join(dirA, "wal"),
		"-addr", "127.0.0.1:0", "-index", "flat", "-repl",
	)
	baseA := "http://" + waitForAddr(t, a.out)
	clientA := fingerprint.NewClient(baseA, nil)
	waitHealthy(t, clientA)

	// Grow the source past its on-disk seed so the join must carry both
	// the snapshot and WAL-logged entries.
	extras := make([]fingerprint.IngestEntry, 5)
	for i := range extras {
		f := make([]float32, 8)
		f[i%8] = 9 + float32(i)
		extras[i] = fingerprint.IngestEntry{Fingerprint: f, Label: i % 3, Source: "joined"}
	}
	if _, err := clientA.Ingest(extras); err != nil {
		t.Fatal(err)
	}

	// The new replica: its -db path does not exist. Everything it comes
	// to serve must have arrived over the replication endpoints.
	dirB := t.TempDir()
	b := spawnDaemon(t,
		"-db", filepath.Join(dirB, "linkage.db"), "-wal", filepath.Join(dirB, "wal"),
		"-addr", "127.0.0.1:0", "-index", "flat", "-repl-peer", baseA,
	)
	baseB := "http://" + waitForAddr(t, b.out)
	clientB := fingerprint.NewClient(baseB, nil)
	waitHealthy(t, clientB)
	stB := waitReplState(t, baseB, "live")

	if !strings.Contains(b.out.String(), "bootstrap:") {
		t.Fatalf("joining replica never announced its snapshot bootstrap:\n%s", b.out.String())
	}
	stA, err := cluster.SyncStatus(context.Background(), nil, baseA)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Head != stA.Head {
		t.Fatalf("joined replica head %d != source head %d", stB.Head, stA.Head)
	}
	st, err := clientB.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 95 {
		t.Fatalf("joined replica serves %d entries, want 95", st.Entries)
	}
	for i, e := range extras {
		out, err := clientB.Query(e.Fingerprint, e.Label, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Matches) != 1 || out.Matches[0].Source != "joined" || out.Matches[0].Distance > 1e-6 {
			t.Fatalf("joined replica entry %d: %+v", i, out.Matches)
		}
	}
}
