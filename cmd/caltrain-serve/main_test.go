package main

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
)

// syncBuffer lets the test read the daemon's output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func writeTestDB(t *testing.T, n int) string {
	t.Helper()
	db, err := fingerprint.NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(77, 1))
	for i, f := range index.SynthFingerprints(rng, n, 8, 8, 0.2) {
		if err := db.Add(fingerprint.Linkage{F: f, Y: i % 3, S: "p1"}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "linkage.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

var addrRE = regexp.MustCompile(`serving accountability queries on (\S+)`)

func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced its address; output:\n%s", out.String())
	return ""
}

// TestServeLifecycle is the daemon acceptance test: start on a random
// port with an IVF index, answer /healthz, serve single and batch
// queries from concurrent clients, then shut down gracefully on SIGTERM.
func TestServeLifecycle(t *testing.T) {
	dbPath := writeTestDB(t, 600)
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-db", dbPath, "-addr", "127.0.0.1:0",
			"-index", "ivf", "-nlist", "8", "-nprobe", "4",
		}, &out)
	}()
	addr := waitForAddr(t, &out)
	client := fingerprint.NewClient("http://"+addr, nil)

	deadline := time.Now().Add(5 * time.Second)
	for client.Healthz() != nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 9))
			for i := 0; i < 20; i++ {
				q := index.SynthFingerprints(rng, 1, 8, 2, 0.3)[0]
				if _, err := client.Query(q, i%3, 5); err != nil {
					t.Error(err)
					return
				}
				batch := []fingerprint.QueryRequest{
					{Fingerprint: q, Label: 0, K: 3},
					{Fingerprint: make([]float32, 2), Label: 0, K: 3}, // per-query failure
				}
				resp, err := client.QueryBatch(batch)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Results[0].Error != "" || resp.Results[1].Error == "" {
					t.Errorf("batch results: %+v", resp.Results)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != "ivf" || st.Entries != 600 || st.Queries == 0 {
		t.Fatalf("stats: %+v", st)
	}

	// The real signal path: SIGTERM to the process, caught by
	// signal.NotifyContext inside run.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	if !bytes.Contains([]byte(out.String()), []byte("drained")) {
		t.Fatalf("no graceful drain message; output:\n%s", out.String())
	}
}

// TestServeSaveLoadIndex persists a built index and restarts from it.
func TestServeSaveLoadIndex(t *testing.T) {
	dbPath := writeTestDB(t, 300)
	idxPath := filepath.Join(t.TempDir(), "linkage.ivf")

	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-db", dbPath, "-addr", "127.0.0.1:0",
			"-index", "ivf", "-nlist", "4", "-save-index", idxPath,
		}, &out)
	}()
	waitForAddr(t, &out)
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	var out2 syncBuffer
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, []string{
			"-db", dbPath, "-addr", "127.0.0.1:0", "-load-index", idxPath,
		}, &out2)
	}()
	addr := waitForAddr(t, &out2)
	client := fingerprint.NewClient("http://"+addr, nil)
	deadline := time.Now().Add(5 * time.Second)
	for client.Healthz() != nil {
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != "ivf" || st.Entries != 300 {
		t.Fatalf("reloaded stats: %+v", st)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
}

// TestServeDeploymentConfigSingle: -deployment declares the topology
// from one JSON file; the daemon serves it and /v1/meta reports the
// declared backend.
func TestServeDeploymentConfigSingle(t *testing.T) {
	dbPath := writeTestDB(t, 120)
	cfgPath := filepath.Join(t.TempDir(), "deploy.json")
	doc := `{"backend": {"kind": "ivf", "nlist": 4, "nprobe": 4}, "limits": {"max_k": 7}}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-db", dbPath, "-addr", "127.0.0.1:0", "-deployment", cfgPath}, &out)
	}()
	addr := waitForAddr(t, &out)
	client := fingerprint.NewClient("http://"+addr, nil)
	meta, err := client.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Backend != "ivf" || meta.Capabilities.Ingest || meta.Capabilities.Sharded {
		t.Fatalf("meta: %+v", meta)
	}
	// The file's limits are live: k over max_k is rejected with the
	// limit_exceeded envelope code.
	_, err = client.Query(make(fingerprint.Fingerprint, 8), 0, 8)
	if fingerprint.CodeOf(err) != fingerprint.ErrCodeLimitExceeded {
		t.Fatalf("k over config limit: %v (code %q)", err, fingerprint.CodeOf(err))
	}
	if _, err := client.Query(make(fingerprint.Fingerprint, 8), 0, 5); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServeDeploymentConfigSharded: a "shards" document makes the one
// daemon serve the whole in-process sharded topology — scatter-gather
// reads and routed writes — from a single file.
func TestServeDeploymentConfigSharded(t *testing.T) {
	dbPath := writeTestDB(t, 150)
	cfgPath := filepath.Join(t.TempDir(), "deploy.json")
	doc := `{"backend": {"kind": "flat"}, "shards": 3, "volatile_writes": true}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-db", dbPath, "-addr", "127.0.0.1:0", "-deployment", cfgPath}, &out)
	}()
	addr := waitForAddr(t, &out)
	client := fingerprint.NewClient("http://"+addr, nil)
	meta, err := client.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Capabilities.Sharded || !meta.Capabilities.Ingest {
		t.Fatalf("sharded meta: %+v", meta)
	}
	if _, err := client.Query(make(fingerprint.Fingerprint, 8), 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest([]fingerprint.IngestEntry{
		{Fingerprint: make([]float32, 8), Label: 2, Source: "cfg-test"},
	}); err != nil {
		t.Fatalf("routed ingest: %v", err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 151 {
		t.Fatalf("entries after routed ingest: %d, want 151", st.Entries)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServeDeploymentConflictsWithKnobFlags: a topology knob alongside
// -deployment is a config fight; each one is rejected by name.
func TestServeDeploymentConflictsWithKnobFlags(t *testing.T) {
	dbPath := writeTestDB(t, 30)
	cfgPath := filepath.Join(t.TempDir(), "deploy.json")
	if err := os.WriteFile(cfgPath, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-backend", "flat"}, {"-index", "ivf"}, {"-nlist", "4"},
		{"-wal", "waldir"}, {"-max-k", "9"}, {"-save-index", "x.idx"},
	} {
		args := append([]string{"-db", dbPath, "-deployment", cfgPath}, extra...)
		err := run(context.Background(), args, &syncBuffer{})
		if err == nil || !strings.Contains(err.Error(), "conflicts with -deployment") {
			t.Fatalf("%v: %v", extra, err)
		}
	}
	// -snapshot-every without a WAL (or with shards) in the file cannot
	// compact anything.
	err := run(context.Background(),
		[]string{"-db", dbPath, "-deployment", cfgPath, "-snapshot-every", "1s"}, &syncBuffer{})
	if err == nil {
		t.Fatal("-snapshot-every against a read-only deployment config accepted")
	}
}

func TestServeRejectsUnknownIndexKind(t *testing.T) {
	dbPath := writeTestDB(t, 30)
	err := run(context.Background(), []string{"-db", dbPath, "-index", "annoy"}, &syncBuffer{})
	if err == nil {
		t.Fatal("unknown index kind accepted")
	}
}

func TestServeRejectsConflictingFlags(t *testing.T) {
	dbPath := writeTestDB(t, 30)
	// -save-index with the linear scan has nothing to persist.
	err := run(context.Background(), []string{"-db", dbPath, "-index", "linear", "-save-index", "x.idx"}, &syncBuffer{})
	if err == nil {
		t.Fatal("-index linear -save-index accepted")
	}
	// Training flags alongside -load-index would be silently ignored.
	for _, extra := range [][]string{{"-index", "ivf"}, {"-nlist", "4"}, {"-iters", "3"}, {"-seed", "1"}} {
		args := append([]string{"-db", dbPath, "-load-index", "whatever.idx"}, extra...)
		if err := run(context.Background(), args, &syncBuffer{}); err == nil {
			t.Fatalf("%v with -load-index accepted", extra)
		}
	}
}

func TestServeRejectsMismatchedIndex(t *testing.T) {
	dbPath := writeTestDB(t, 40)
	otherDB := writeTestDB(t, 50)
	// Build an index over a different database and try to serve with it:
	// the daemon must refuse with a message naming both entry counts, not
	// silently serve results that point at the wrong linkages.
	f, err := os.Open(otherDB)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fingerprint.LoadDB(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(t.TempDir(), "other.idx")
	w, err := os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := index.Save(w, index.NewFlat(db)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	err = run(context.Background(), []string{"-db", dbPath, "-load-index", idxPath}, &syncBuffer{})
	if err == nil {
		t.Fatal("mismatched index accepted")
	}
	msg := err.Error()
	for _, want := range []string{"does not match database", "50 entries", "40 entries"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("mismatch error %q does not mention %q", msg, want)
		}
	}
}

// TestServeRejectsCorruptIndex: -load-index against a file with an
// unsupported version byte, a foreign magic, or a truncated body must
// fail with a clear loader error instead of serving wrong results.
func TestServeRejectsCorruptIndex(t *testing.T) {
	dbPath := writeTestDB(t, 40)
	f, err := os.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fingerprint.LoadDB(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := index.Save(&good, index.NewFlat(db)); err != nil {
		t.Fatal(err)
	}

	// The loader wraps typed sentinels, so the assertion is errors.Is —
	// not message text: daemons and operators branch the same way.
	corrupt := func(name string, mutate func([]byte) []byte, want error) {
		t.Helper()
		blob := mutate(append([]byte(nil), good.Bytes()...))
		idxPath := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(idxPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), []string{"-db", dbPath, "-load-index", idxPath}, &syncBuffer{})
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
		if !errors.Is(err, want) {
			t.Fatalf("%s: error %q is not %q", name, err, want)
		}
	}
	corrupt("future-version.idx", func(b []byte) []byte { b[4] = 99; return b }, index.ErrVersionMismatch)
	corrupt("bad-magic.idx", func(b []byte) []byte { copy(b, "NOPE"); return b }, index.ErrCorrupt)
	corrupt("truncated.idx", func(b []byte) []byte { return b[:len(b)/2] }, index.ErrCorrupt)
	// The two sentinels stay distinct: a version mismatch is not
	// corruption and vice versa.
	corruptIs := func(mutate func([]byte) []byte, not error) {
		t.Helper()
		blob := mutate(append([]byte(nil), good.Bytes()...))
		idxPath := filepath.Join(t.TempDir(), "distinct.idx")
		if err := os.WriteFile(idxPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), []string{"-db", dbPath, "-load-index", idxPath}, &syncBuffer{})
		if errors.Is(err, not) {
			t.Fatalf("error %q should not be %q", err, not)
		}
	}
	corruptIs(func(b []byte) []byte { b[4] = 99; return b }, index.ErrCorrupt)
	corruptIs(func(b []byte) []byte { copy(b, "NOPE"); return b }, index.ErrVersionMismatch)
}
