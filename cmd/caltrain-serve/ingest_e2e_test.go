package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/shard"
)

// TestMain doubles as the daemon-under-test: when re-exec'd with
// CALTRAIN_SERVE_HELPER=1 the test binary runs a real caltrain-serve
// process that can be SIGKILLed — the only honest way to test WAL
// durability.
func TestMain(m *testing.M) {
	if os.Getenv("CALTRAIN_SERVE_HELPER") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("CALTRAIN_SERVE_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "helper:", err)
			os.Exit(2)
		}
		if err := run(context.Background(), args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "caltrain-serve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one spawned caltrain-serve child process.
type daemon struct {
	cmd *exec.Cmd
	out *syncBuffer
}

func spawnDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	blob, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CALTRAIN_SERVE_HELPER=1", "CALTRAIN_SERVE_ARGS="+string(blob))
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return &daemon{cmd: cmd, out: out}
}

func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func waitHealthy(t *testing.T, client *fingerprint.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for client.Healthz() != nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestIngestDurabilityEndToEnd is the write path's acceptance test, the
// production topology in miniature: one shard served by two real daemon
// processes (each with its own database copy and WAL), fronted by a
// router that replicates ingest batches to both with a full write
// quorum. A batch is acknowledged, one replica is SIGKILLed and
// restarted, and WAL replay must restore exactly the acknowledged
// linkages — queries then return the new entries from every replica.
func TestIngestDurabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	seedPath := writeTestDB(t, 120)

	// Two replicas of the one shard, each its own copy of the seed
	// database and its own WAL directory (as on separate hosts).
	var replicas []*fingerprint.Client
	var dirs []string
	var procs []*daemon
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		copyFile(t, seedPath, filepath.Join(dir, "linkage.db"))
		d := spawnDaemon(t,
			"-db", filepath.Join(dir, "linkage.db"),
			"-wal", filepath.Join(dir, "wal"),
			"-addr", "127.0.0.1:0", "-index", "flat",
		)
		addr := waitForAddr(t, d.out)
		client := fingerprint.NewClient("http://"+addr, nil)
		waitHealthy(t, client)
		replicas = append(replicas, client)
		dirs = append(dirs, dir)
		procs = append(procs, d)
	}

	m, err := shard.NewHashMap(1)
	if err != nil {
		t.Fatal(err)
	}
	addrOf := func(d *daemon) string {
		return "http://" + addrRE.FindStringSubmatch(d.out.String())[1]
	}
	rt, err := shard.NewRouter(m, [][]shard.Replica{{
		shard.NewHTTPReplica(addrOf(procs[0]), nil),
		shard.NewHTTPReplica(addrOf(procs[1]), nil),
	}}, shard.WithWriteQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()
	routerClient := fingerprint.NewClient(routerSrv.URL, nil)

	// Ingest a batch through the router fan-out; with quorum 2 the ack
	// means both replicas logged it durably.
	entries := make([]fingerprint.IngestEntry, 9)
	for i := range entries {
		f := make([]float32, 8)
		f[i%8] = 7 + float32(i) // far from the seed cluster: it is its own NN
		entries[i] = fingerprint.IngestEntry{Fingerprint: f, Label: i % 3, Source: "ingested"}
	}
	resp, err := routerClient.Ingest(entries)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(entries) || resp.Failed != 0 || len(resp.DegradedReplicas) != 0 {
		t.Fatalf("routed ingest: %+v", resp)
	}

	// SIGKILL replica 1 — no drain, no snapshot, nothing but the WAL.
	procs[1].sigkill(t)

	// Restart it with identical flags. The database file was never
	// rewritten, so everything acknowledged must come back via replay.
	d := spawnDaemon(t,
		"-db", filepath.Join(dirs[1], "linkage.db"),
		"-wal", filepath.Join(dirs[1], "wal"),
		"-addr", "127.0.0.1:0", "-index", "flat",
	)
	addr := waitForAddr(t, d.out)
	restarted := fingerprint.NewClient("http://"+addr, nil)
	waitHealthy(t, restarted)
	replicas[1] = restarted

	// Exactly the acknowledged linkages: seed + batch, no more, no less.
	for i, client := range replicas {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Entries != 120+len(entries) {
			t.Fatalf("replica %d serves %d entries, want %d", i, st.Entries, 120+len(entries))
		}
		for j, e := range entries {
			out, err := client.Query(e.Fingerprint, e.Label, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Matches) != 1 || out.Matches[0].Source != "ingested" || out.Matches[0].Distance > 1e-6 {
				t.Fatalf("replica %d entry %d: %+v", i, j, out.Matches)
			}
		}
	}
	st, err := replicas[1].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil || st.Ingest.ReplayEntries != uint64(len(entries)) {
		t.Fatalf("restarted replica ingest stats: %+v", st.Ingest)
	}

	// And through the router: both replicas are serving again.
	single, err := routerClient.Query(entries[0].Fingerprint, entries[0].Label, 1)
	if err != nil || len(single.Matches) != 1 || single.Matches[0].Source != "ingested" {
		t.Fatalf("routed query after restart: %+v, %v", single, err)
	}
}

// TestServeIngestGracefulSnapshot: a drained daemon compacts — the
// database file is rewritten with the ingested entries and the restart
// replays nothing.
func TestServeIngestGracefulSnapshot(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "linkage.db")
	copyFile(t, writeTestDB(t, 60), dbPath)

	d := spawnDaemon(t, "-db", dbPath, "-wal", filepath.Join(dir, "wal"),
		"-addr", "127.0.0.1:0", "-index", "flat")
	addr := waitForAddr(t, d.out)
	client := fingerprint.NewClient("http://"+addr, nil)
	waitHealthy(t, client)

	entries := []fingerprint.IngestEntry{{Fingerprint: make([]float32, 8), Label: 1, Source: "snap"}}
	if _, err := client.Ingest(entries); err != nil {
		t.Fatal(err)
	}
	// SIGTERM: drain, snapshot, truncate.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v\n%s", err, d.out.String())
	}

	d2 := spawnDaemon(t, "-db", dbPath, "-wal", filepath.Join(dir, "wal"),
		"-addr", "127.0.0.1:0", "-index", "flat")
	addr2 := waitForAddr(t, d2.out)
	client2 := fingerprint.NewClient("http://"+addr2, nil)
	waitHealthy(t, client2)
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 61 {
		t.Fatalf("after snapshot restart: %d entries, want 61", st.Entries)
	}
	if st.Ingest == nil || st.Ingest.ReplayEntries != 0 {
		t.Fatalf("snapshot restart should replay nothing: %+v", st.Ingest)
	}
}

// TestServeIngestSnapshotKeepsIndexInSync is the -load-index restart
// regression guard: a daemon serving a loaded index with -wal must,
// on snapshot, re-save that index alongside the database — otherwise
// the restart's entry-count check would refuse the stale index file
// against the grown database.
func TestServeIngestSnapshotKeepsIndexInSync(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "linkage.db")
	idxPath := filepath.Join(dir, "linkage.ivf")
	copyFile(t, writeTestDB(t, 90), dbPath)

	// First run builds and saves the index.
	d := spawnDaemon(t, "-db", dbPath, "-index", "ivf", "-nlist", "4",
		"-save-index", idxPath, "-wal", filepath.Join(dir, "wal"), "-addr", "127.0.0.1:0")
	client := fingerprint.NewClient("http://"+waitForAddr(t, d.out), nil)
	waitHealthy(t, client)
	if _, err := client.Ingest([]fingerprint.IngestEntry{
		{Fingerprint: make([]float32, 8), Label: 0, Source: "grow"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v\n%s", err, d.out.String())
	}

	// Restart from the loaded index (no -save-index): must come up with
	// the grown entry count, replay nothing — and after another ingest +
	// SIGTERM, the loaded index file itself must be re-persisted.
	for round := 0; round < 2; round++ {
		d = spawnDaemon(t, "-db", dbPath, "-load-index", idxPath,
			"-wal", filepath.Join(dir, "wal"), "-addr", "127.0.0.1:0")
		client = fingerprint.NewClient("http://"+waitForAddr(t, d.out), nil)
		waitHealthy(t, client)
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if want := 91 + round; st.Entries != want || st.Index != "ivf" || st.Ingest.ReplayEntries != 0 {
			t.Fatalf("round %d: %d entries (%s, replay %d), want %d", round, st.Entries, st.Index, st.Ingest.ReplayEntries, want)
		}
		if _, err := client.Ingest([]fingerprint.IngestEntry{
			{Fingerprint: make([]float32, 8), Label: 1, Source: "grow"},
		}); err != nil {
			t.Fatal(err)
		}
		if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := d.cmd.Wait(); err != nil {
			t.Fatalf("round %d daemon exit: %v\n%s", round, err, d.out.String())
		}
	}
}
