// Command caltrain-serve is the production accountability query daemon:
// it loads a linkage database produced by caltrain-train, builds (or
// loads) a nearest-neighbour index over it, and serves single and batch
// fingerprint queries over HTTP until SIGTERM/SIGINT, then drains
// in-flight requests and exits.
//
//	caltrain-serve -db linkage.db -addr :8791 -backend ivf -nprobe 8
//
// Endpoints (versioned wire protocol; each also serves at its
// unversioned legacy alias, e.g. POST /query):
//
//	POST /v1/query        one misprediction fingerprint → k nearest neighbours
//	POST /v1/query/batch  many queries in one round trip, per-query errors
//	POST /v1/ingest       durable batch writes (with -wal; 501 without)
//	GET  /v1/healthz      liveness
//	GET  /v1/stats        entry count, index kind, query counters, latency histogram
//	GET  /v1/meta         server version, backend kind, capabilities, build info
//	GET  /v1/metrics      Prometheus text-format exposition of the same counters
//
// Every non-200 response carries the structured error envelope
// {code, error, details, request_id}.
//
// Observability: every request is tagged with an X-Request-Id (the
// inbound header when present, generated otherwise), echoed on the
// response, in error envelopes, and — with -request-log — in one
// structured stderr log line per request with per-stage timings;
// -slow-query-threshold warns about slow requests even without the
// full request log. Every request is also recorded as a span tree
// under one trace — joined across processes via the W3C traceparent
// header — head-sampled at -trace-sample-rate into a bounded in-memory
// store (-trace-store), with slow (-trace-slow) and 5xx traces always
// kept. -debug-addr opens a sidecar listener (never the public
// address) serving pprof, expvar, and GET /v1/debug/traces[/{id}].
//
// Index backends (-backend; -index is a legacy alias): "linear" is the
// exact reference scan over the database, "flat" the exact heap-select
// scan over contiguous storage, "ivf" the approximate inverted-file
// index (tune with -nlist/-nprobe; see internal/index), "ivfpq" the
// product-quantized IVF that stores -pq-m code bytes per entry instead
// of float vectors (~4·dim/M smaller, ADC table scans). The flag is
// parsed once into a serve.BackendSpec and the whole topology is built
// through serve.Deployment — a new backend kind means a new Spec, not
// daemon surgery. A built IVF or IVFPQ index can be persisted with
// -save-index and reloaded with -load-index to skip training on
// restart.
//
// Online ingest (-wal DIR) turns the daemon into a durable write path:
// POST /ingest batches are CRC-framed into a write-ahead log (fsynced
// per -fsync) before they are applied to the database and appended into
// the serving index, so an acknowledged batch survives SIGKILL — on
// restart the daemon replays the log over the loaded database. IVF
// backends track drift and retrain + hot-swap in the background past
// -drift-threshold. -snapshot-every (and graceful shutdown) persists
// the database back to -db and truncates the log.
//
// Replication (-repl, -repl-peer URL; or the replication{} block in
// -deployment mode) makes a -wal daemon a self-healing replica: it
// serves GET /v1/repl/snapshot and GET /v1/repl/wal so peers can
// bootstrap and catch up from it, and runs the sync state machine
// (cold → snapshot → catchup → live) that POST /v1/repl/sync — and the
// router's anti-entropy repair loop — drive. With -repl-peer the daemon
// syncs from that peer at startup before accepting external writes, and
// a missing -db file is fetched from the peer as a snapshot, so a
// brand-new empty replica joins with nothing but a peer URL.
//
// Declarative mode (-deployment config.json) replaces the per-knob
// flags with one JSON document — backend, sharding, replicas,
// durability, limits — parsed by serve.ParseConfig:
//
//	caltrain-serve -db linkage.db -deployment deploy.json
//	{"backend": {"kind": "ivf", "nprobe": 8}, "shards": 4, "volatile_writes": true}
//
// With "shards" above 1 the daemon serves the whole in-process sharded
// topology (the caltrain-router shape without the per-shard processes)
// from the one file.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"caltrain/internal/cluster"
	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
	"caltrain/internal/ingest"
	"caltrain/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-serve:", err)
		os.Exit(1)
	}
}

func run(parent context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("caltrain-serve", flag.ContinueOnError)
	var (
		dbPath  = fs.String("db", "linkage.db", "linkage database path")
		addr    = fs.String("addr", ":8791", "listen address")
		kind    = fs.String("backend", "flat", "index backend: linear, flat, ivf, or ivfpq")
		depPath = fs.String("deployment", "", "deployment config file (JSON): backend, sharding, durability, limits in one document — conflicts with the per-knob flags")
	)
	fs.StringVar(kind, "index", "flat", "legacy alias of -backend")
	var (
		nlist     = fs.Int("nlist", 0, "IVF/IVFPQ lists per label (0 = auto ≈√n)")
		nprobe    = fs.Int("nprobe", 0, "IVF/IVFPQ lists probed per query (0 = auto)")
		iters     = fs.Int("iters", 0, "IVF/IVFPQ k-means iterations (0 = default)")
		seed      = fs.Uint64("seed", 42, "IVF/IVFPQ training seed")
		pqM       = fs.Int("pq-m", 0, "IVFPQ subquantizers (code bytes per entry, must divide the fingerprint dim; 0 = auto)")
		loadIndex = fs.String("load-index", "", "load a serialized index instead of building one")
		saveIndex = fs.String("save-index", "", "persist the built index to this path")
		maxBody   = fs.Int64("max-body", fingerprint.DefaultMaxBodyBytes, "request body size limit in bytes")
		maxK      = fs.Int("max-k", fingerprint.DefaultMaxK, "per-query neighbour count limit")
		maxBatch  = fs.Int("max-batch", fingerprint.DefaultMaxBatch, "queries per batch request limit")
		grace     = fs.Duration("grace", 10*time.Second, "shutdown drain timeout")
		buckets   = fs.String("latency-buckets", "", "comma-separated /stats latency bucket bounds as durations (e.g. 100us,1ms,10ms); empty = sub-ms defaults")

		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar, and /v1/debug/traces on this sidecar host:port (empty = no debug listener; never the public address)")
		reqLog    = fs.Bool("request-log", false, "log one structured line per request: request ID, trace ID, status, duration, stage timings")
		slowQuery = fs.Duration("slow-query-threshold", 0, "warn about requests slower than this, even without -request-log (0 = disabled)")

		traceRate  = fs.Float64("trace-sample-rate", 1, "head-sampling probability for request traces, in [0,1] (0 = keep only slow/error traces)")
		traceStore = fs.Int("trace-store", 0, "in-memory trace store size behind /v1/debug/traces (0 = default, negative = no retention)")
		traceSlow  = fs.Duration("trace-slow", 0, "always store traces slower than this, even when not head-sampled (0 = disabled)")

		walDir    = fs.String("wal", "", "write-ahead log directory; enables POST /ingest (empty = read-only daemon)")
		fsync     = fs.String("fsync", "always", "WAL fsync policy: always, interval, or never")
		fsyncEvry = fs.Duration("fsync-every", 50*time.Millisecond, "flush period for -fsync interval")
		segBytes  = fs.Int64("wal-segment-bytes", 64<<20, "rotate WAL segments past this size")
		drift     = fs.Float64("drift-threshold", ingest.DefaultDriftThreshold, "appended fraction that triggers a background IVF retrain + hot-swap (negative disables)")
		snapEvery = fs.Duration("snapshot-every", 0, "periodically persist the database to -db and truncate the WAL (0 = only on graceful shutdown)")

		replOn   = fs.Bool("repl", false, "enable replication: serve the /v1/repl/* snapshot+WAL source endpoints and run the sync state machine (needs -wal)")
		replPeer = fs.String("repl-peer", "", "sync source base URL (another replica of the same shard); implies -repl — the daemon syncs from the peer at startup, and a missing -db file is bootstrapped from its snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *depPath != "" {
		// The config file declares the whole topology; a per-knob flag
		// alongside it would silently lose to (or fight with) the file.
		// Only the flags naming where the daemon runs — not what it
		// serves — are allowed, so a future topology flag conflicts by
		// default instead of silently slipping past a stale deny-list.
		processFlags := map[string]bool{"db": true, "addr": true, "grace": true, "snapshot-every": true, "deployment": true, "debug-addr": true}
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if !processFlags[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-%s conflicts with -deployment: the config file declares the topology", conflict)
		}
	}
	if *loadIndex != "" {
		// The loaded index determines the backend; reject training flags
		// that would silently be ignored. -nprobe stays honored (below).
		for _, conflicting := range []string{"backend", "index", "nlist", "iters", "seed", "pq-m"} {
			if set[conflicting] {
				return fmt.Errorf("-%s conflicts with -load-index: the loaded index determines the backend", conflicting)
			}
		}
	}
	if *saveIndex != "" && *loadIndex == "" && *kind == "linear" {
		return fmt.Errorf("-save-index needs an index backend (-index flat, ivf, or ivfpq): the linear scan has nothing to persist")
	}
	if *walDir == "" && *depPath == "" {
		for _, needsWAL := range []string{"fsync", "fsync-every", "wal-segment-bytes", "drift-threshold", "snapshot-every", "repl", "repl-peer"} {
			if set[needsWAL] {
				return fmt.Errorf("-%s needs -wal: the read-only daemon has no write path", needsWAL)
			}
		}
	}
	if *slowQuery < 0 {
		return fmt.Errorf("-slow-query-threshold must be non-negative (0 disables the slow-query log)")
	}
	if *traceRate < 0 || *traceRate > 1 {
		return fmt.Errorf("-trace-sample-rate must be in [0, 1]")
	}
	if *traceSlow < 0 {
		return fmt.Errorf("-trace-slow must be non-negative (0 disables the always-store threshold)")
	}
	syncPolicy, err := ingest.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}

	// Resolve the topology into a declarative Deployment: from the
	// -deployment config file whole, or from the per-knob flags (the
	// backend flag, or a loaded index, becomes the BackendSpec).
	// Everything downstream — service or router, write path, retrain
	// hook — assembles from it. The config resolves before the database
	// loads so a replication peer declared there can bootstrap a missing
	// -db file.
	var dep serve.Deployment
	if *depPath != "" {
		cfg, err := serve.LoadConfig(*depPath)
		if err != nil {
			return err
		}
		if dep, err = cfg.Deployment(); err != nil {
			return err
		}
		if *snapEvery > 0 {
			if dep.WAL == nil {
				return fmt.Errorf("-snapshot-every needs a wal in the deployment config: the read-only topology has no write path")
			}
			if dep.Shards > 1 {
				return fmt.Errorf("-snapshot-every requires a single-service deployment: sharded stores compact per shard, not into -db")
			}
		}
		fmt.Fprintf(out, "deployment config: %s\n", *depPath)
	}
	peer := *replPeer
	if dep.Replication != nil {
		peer = dep.Replication.Peer
	}

	var db *fingerprint.DB
	dbf, err := os.Open(*dbPath)
	switch {
	case err == nil:
		db, err = fingerprint.LoadDB(dbf)
		dbf.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "linkage database: %d entries, fingerprint dim %d\n", db.Len(), db.Dim())
	case os.IsNotExist(err) && peer != "":
		// A brand-new replica: no local database yet, but a peer to copy.
		// Its snapshot seeds the database; the sync state machine catches
		// up the WAL tail once the topology is built and serving.
		var seq uint64
		db, seq, err = cluster.FetchSnapshot(parent, nil, peer)
		if err != nil {
			return fmt.Errorf("bootstrap from %s: %w", peer, err)
		}
		fmt.Fprintf(out, "bootstrap: %s missing; fetched snapshot from %s (%d entries, fingerprint dim %d, seq %d)\n",
			*dbPath, peer, db.Len(), db.Dim(), seq)
	default:
		return err
	}

	if *depPath == "" {
		ivfOpts := index.IVFPQOptions{
			IVFOptions: index.IVFOptions{Nlist: *nlist, Nprobe: *nprobe, Iters: *iters, Seed: *seed},
			M:          *pqM,
		}
		var spec serve.BackendSpec
		if *loadIndex != "" {
			loaded, err := loadIndexFile(*loadIndex, db, out)
			if err != nil {
				return err
			}
			pre := serve.PrebuiltSpec{Searcher: loaded}
			switch x := loaded.(type) {
			case *index.IVF:
				if set["nprobe"] {
					x.SetNprobe(*nprobe)
					fmt.Fprintf(out, "nprobe overridden to %d\n", x.Nprobe())
				}
				pre.RebuildFunc = serve.IVFSpec{IVFOptions: ivfOpts.IVFOptions}.Rebuild()
			case *index.IVFPQ:
				if set["nprobe"] {
					x.SetNprobe(*nprobe)
					fmt.Fprintf(out, "nprobe overridden to %d\n", x.Nprobe())
				}
				retrain := ivfOpts
				retrain.M = x.M() // the loaded code width wins over -pq-m's default
				pre.RebuildFunc = serve.IVFPQSpec{IVFPQOptions: retrain}.Rebuild()
			}
			spec = pre
		} else {
			spec, err = serve.ParseBackend(*kind, ivfOpts)
			if err != nil {
				return err
			}
		}

		svcOpts := []fingerprint.ServiceOption{
			fingerprint.WithMaxBodyBytes(*maxBody),
			fingerprint.WithMaxK(*maxK),
			fingerprint.WithMaxBatch(*maxBatch),
		}
		if *buckets != "" {
			bounds, err := fingerprint.ParseLatencyBuckets(*buckets)
			if err != nil {
				return err
			}
			svcOpts = append(svcOpts, fingerprint.WithLatencyBuckets(bounds))
		}

		dep = serve.Deployment{Backend: spec, Limits: svcOpts}
		if *walDir != "" {
			dep.WAL = &serve.WALConfig{Dir: *walDir, Store: ingest.Options{
				WAL:            ingest.WALOptions{Sync: syncPolicy, SyncEvery: *fsyncEvry, SegmentBytes: *segBytes},
				DriftThreshold: *drift,
			}}
		}
		if *replOn || *replPeer != "" {
			dep.Replication = &serve.ReplicationConfig{Peer: *replPeer}
		}
	}
	// Observability: the config file's observability block wins in
	// -deployment mode (the flag forms of these knobs conflict with it);
	// -debug-addr is a process flag, so it composes either way. Request
	// and slow-query logs go to stderr, keeping stdout for the daemon's
	// own startup lines.
	if dep.Observability == nil {
		dep.Observability = &serve.ObservabilityConfig{}
	}
	if *depPath == "" {
		dep.Observability.RequestLog = *reqLog
		dep.Observability.SlowQueryThreshold = *slowQuery
		dep.Observability.Trace = &serve.TraceConfig{
			SampleRate: *traceRate,
			StoreSize:  *traceStore,
			SlowAlways: *traceSlow,
		}
	}
	if dep.Observability.Logger == nil {
		dep.Observability.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *debugAddr != "" {
		dep.Observability.DebugAddr = *debugAddr
	}

	if dep.WAL != nil && dep.WAL.Store.Logf == nil {
		dep.WAL.Store.Logf = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}
	// Build trains the index (if any) and replays the WAL, so both
	// -save-index below and the first query see every acknowledged entry.
	buildStart := time.Now()
	built, err := dep.Build(db)
	if err != nil {
		return err
	}
	svc := built.Service()
	var desc string
	var store *ingest.Store
	if svc != nil {
		searcher := svc.Searcher()
		desc = "index " + searcher.Kind()
		if ivf, ok := searcher.(*index.IVF); ok && *loadIndex == "" {
			fmt.Fprintf(out, "trained IVF index in %v (nprobe %d)\n", time.Since(buildStart).Round(time.Millisecond), ivf.Nprobe())
		}
		store = built.Store()
	} else {
		desc = fmt.Sprintf("%s-sharded router, %d shards", dep.Backend.Kind(), dep.Shards)
	}
	if store != nil {
		fmt.Fprintf(out, "wal: %s (fsync %s), replayed %d entries, %d total\n",
			dep.WAL.Dir, dep.WAL.Store.WAL.Sync, store.Replayed(), db.Len())
	} else if stores := built.Stores(); len(stores) > 0 {
		fmt.Fprintf(out, "wal: %s, %d shard-replica stores\n", dep.WAL.Dir, len(stores))
	}
	if dep.Replication != nil {
		if dep.Replication.Peer != "" {
			fmt.Fprintf(out, "replication: enabled, peer %s\n", dep.Replication.Peer)
		} else {
			fmt.Fprintln(out, "replication: enabled (source-only until nudged)")
		}
	}

	if *saveIndex != "" {
		if err := saveIndexFile(*saveIndex, svc.Searcher()); err != nil {
			return err
		}
		fmt.Fprintf(out, "index saved to %s\n", *saveIndex)
	}

	ctx, stop := signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Snapshots must persist the index alongside the database whenever
	// one is being kept on disk — including a -load-index file, or the
	// restart would refuse the (now smaller) index against the grown
	// database. Running inside Store.Snapshot keeps the two files
	// agreeing on entry count under the write lock.
	indexOut := *saveIndex
	if indexOut == "" {
		indexOut = *loadIndex
	}
	var persist []func(fingerprint.Searcher) error
	if indexOut != "" {
		persist = append(persist, func(sr fingerprint.Searcher) error {
			return saveIndexFile(indexOut, sr)
		})
	}

	var snapDone chan struct{}
	if store != nil && *snapEvery > 0 {
		snapDone = make(chan struct{})
		go func() {
			defer close(snapDone)
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// Ask for the store each cycle: under replication a
					// full resync swaps it (and the database) out.
					st := built.Store()
					if st == nil {
						continue
					}
					if err := st.Snapshot(*dbPath, persist...); err != nil {
						fmt.Fprintf(out, "snapshot: %v\n", err)
						continue
					}
					fmt.Fprintf(out, "snapshot: %d entries → %s, wal truncated\n", svc.Searcher().Len(), *dbPath)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if da := dep.Observability.DebugAddr; da != "" {
		dl, err := serve.ListenDebug(da, built.TraceStore())
		if err != nil {
			return err
		}
		defer dl.Close()
		fmt.Fprintf(out, "debug listener (pprof, expvar, traces) on %s\n", dl.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	endpoints := "/v1 + legacy: POST /query, POST /query/batch, GET /healthz, GET /stats, GET /meta"
	if dep.WAL != nil || dep.VolatileWrites {
		endpoints = "/v1 + legacy: POST /query, POST /query/batch, POST /ingest, GET /healthz, GET /stats, GET /meta"
	}
	fmt.Fprintf(out, "serving accountability queries on %s (%s; %s)\n",
		l.Addr(), desc, endpoints)
	if err := built.Serve(ctx, l, *grace); err != nil {
		return err
	}
	if store != nil {
		// Let the periodic snapshotter finish its current cycle before
		// the final compaction — ctx is cancelled, so it exits promptly.
		if snapDone != nil {
			<-snapDone
		}
		// Graceful shutdown compacts: persist the database (and the
		// index, when one is being persisted) so the restart loads a
		// snapshot instead of replaying the whole log. The store is
		// re-fetched: under replication a full resync swaps it out.
		if st := built.Store(); st != nil {
			if err := st.Snapshot(*dbPath, persist...); err != nil {
				return err
			}
		}
		if err := built.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "final snapshot: %d entries → %s\n", svc.Searcher().Len(), *dbPath)
	} else if stores := built.Stores(); len(stores) > 0 {
		// Sharded write paths have no single -db file to compact into;
		// close them flushed — the per-replica WALs replay on restart.
		if err := built.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "closed %d shard write paths (wal retained for replay)\n", len(stores))
	}
	fmt.Fprintln(out, "drained, bye")
	return nil
}

func saveIndexFile(path string, s fingerprint.Searcher) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := index.Save(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadIndexFile loads a serialized index and verifies it matches the
// database it will serve. Backend selection from -backend goes through
// serve.ParseBackend instead.
func loadIndexFile(path string, db *fingerprint.DB, out io.Writer) (fingerprint.Searcher, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := index.Load(f)
	if err != nil {
		return nil, err
	}
	if s.Dim() != db.Dim() || s.Len() != db.Len() {
		return nil, fmt.Errorf("index %s (%d entries, dim %d) does not match database (%d entries, dim %d)",
			path, s.Len(), s.Dim(), db.Len(), db.Dim())
	}
	fmt.Fprintf(out, "loaded %s index from %s\n", s.Kind(), path)
	return s, nil
}
