// Command caltrain-serve is the production accountability query daemon:
// it loads a linkage database produced by caltrain-train, builds (or
// loads) a nearest-neighbour index over it, and serves single and batch
// fingerprint queries over HTTP until SIGTERM/SIGINT, then drains
// in-flight requests and exits.
//
//	caltrain-serve -db linkage.db -addr :8791 -index ivf -nprobe 8
//
// Endpoints:
//
//	POST /query        one misprediction fingerprint → k nearest neighbours
//	POST /query/batch  many queries in one round trip, per-query errors
//	GET  /healthz      liveness
//	GET  /stats        entry count, index kind, query counters, latency histogram
//
// Index backends (-index): "linear" is the exact reference scan over the
// database, "flat" the exact heap-select scan over contiguous storage,
// "ivf" the approximate inverted-file index (tune with -nlist/-nprobe;
// see internal/index). A built IVF index can be persisted with
// -save-index and reloaded with -load-index to skip training on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-serve:", err)
		os.Exit(1)
	}
}

func run(parent context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("caltrain-serve", flag.ContinueOnError)
	var (
		dbPath    = fs.String("db", "linkage.db", "linkage database path")
		addr      = fs.String("addr", ":8791", "listen address")
		kind      = fs.String("index", "flat", "index backend: linear, flat, or ivf")
		nlist     = fs.Int("nlist", 0, "IVF lists per label (0 = auto ≈√n)")
		nprobe    = fs.Int("nprobe", 0, "IVF lists probed per query (0 = auto)")
		iters     = fs.Int("iters", 0, "IVF k-means iterations (0 = default)")
		seed      = fs.Uint64("seed", 42, "IVF training seed")
		loadIndex = fs.String("load-index", "", "load a serialized index instead of building one")
		saveIndex = fs.String("save-index", "", "persist the built index to this path")
		maxBody   = fs.Int64("max-body", fingerprint.DefaultMaxBodyBytes, "request body size limit in bytes")
		maxK      = fs.Int("max-k", fingerprint.DefaultMaxK, "per-query neighbour count limit")
		maxBatch  = fs.Int("max-batch", fingerprint.DefaultMaxBatch, "queries per batch request limit")
		grace     = fs.Duration("grace", 10*time.Second, "shutdown drain timeout")
		buckets   = fs.String("latency-buckets", "", "comma-separated /stats latency bucket bounds as durations (e.g. 100us,1ms,10ms); empty = sub-ms defaults")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *loadIndex != "" {
		// The loaded index determines the backend; reject training flags
		// that would silently be ignored. -nprobe stays honored (below).
		for _, conflicting := range []string{"index", "nlist", "iters", "seed"} {
			if set[conflicting] {
				return fmt.Errorf("-%s conflicts with -load-index: the loaded index determines the backend", conflicting)
			}
		}
	}
	if *saveIndex != "" && *loadIndex == "" && *kind == "linear" {
		return fmt.Errorf("-save-index needs an index backend (-index flat or ivf): the linear scan has nothing to persist")
	}

	dbf, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	db, err := fingerprint.LoadDB(dbf)
	dbf.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "linkage database: %d entries, fingerprint dim %d\n", db.Len(), db.Dim())

	searcher, err := buildSearcher(db, *kind, *loadIndex, index.IVFOptions{
		Nlist: *nlist, Nprobe: *nprobe, Iters: *iters, Seed: *seed,
	}, out)
	if err != nil {
		return err
	}
	if ivf, ok := searcher.(*index.IVF); ok && *loadIndex != "" && set["nprobe"] {
		ivf.SetNprobe(*nprobe)
		fmt.Fprintf(out, "nprobe overridden to %d\n", ivf.Nprobe())
	}
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			return err
		}
		if err := index.Save(f, searcher); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "index saved to %s\n", *saveIndex)
	}

	svcOpts := []fingerprint.ServiceOption{
		fingerprint.WithMaxBodyBytes(*maxBody),
		fingerprint.WithMaxK(*maxK),
		fingerprint.WithMaxBatch(*maxBatch),
	}
	if *buckets != "" {
		bounds, err := fingerprint.ParseLatencyBuckets(*buckets)
		if err != nil {
			return err
		}
		svcOpts = append(svcOpts, fingerprint.WithLatencyBuckets(bounds))
	}
	svc := fingerprint.NewSearcherService(searcher, svcOpts...)

	ctx, stop := signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving accountability queries on %s (index %s; POST /query, POST /query/batch, GET /healthz, GET /stats)\n",
		l.Addr(), searcher.Kind())
	if err := svc.Serve(ctx, l, *grace); err != nil {
		return err
	}
	fmt.Fprintln(out, "drained, bye")
	return nil
}

func buildSearcher(db *fingerprint.DB, kind, loadPath string, opts index.IVFOptions, out io.Writer) (fingerprint.Searcher, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := index.Load(f)
		if err != nil {
			return nil, err
		}
		if s.Dim() != db.Dim() || s.Len() != db.Len() {
			return nil, fmt.Errorf("index %s (%d entries, dim %d) does not match database (%d entries, dim %d)",
				loadPath, s.Len(), s.Dim(), db.Len(), db.Dim())
		}
		fmt.Fprintf(out, "loaded %s index from %s\n", s.Kind(), loadPath)
		return s, nil
	}
	switch kind {
	case "linear":
		return db, nil
	case "flat":
		return index.NewFlat(db), nil
	case "ivf":
		started := time.Now()
		ivf, err := index.TrainIVF(db, opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "trained IVF index in %v (nprobe %d)\n", time.Since(started).Round(time.Millisecond), ivf.Nprobe())
		return ivf, nil
	default:
		return nil, fmt.Errorf("unknown index kind %q (want linear, flat, or ivf)", kind)
	}
}
