package main

import (
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
	"caltrain/internal/obs"
	"caltrain/internal/shard"
)

var debugAddrRE = regexp.MustCompile(`debug listener \(pprof, expvar, traces\) on (\S+)`)

func waitForDebugAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := debugAddrRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced its debug address; output:\n%s", out.String())
	return ""
}

// TestTracePropagationEndToEnd is the tracing acceptance test, the
// production topology in miniature: a database split across two real
// shard daemon processes, fronted by a router in this process. One
// routed batch query must produce ONE trace — same trace ID in every
// process — whose pieces stitch: the router's store holds the root,
// scatter, shard_attempt, and rpc spans, and each shard daemon's debug
// sidecar serves its own part of the trace with the daemon's root span
// parented under the router's rpc span for that replica.
func TestTracePropagationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}

	// Split a database exactly as caltrain-shard would.
	db, err := fingerprint.NewDB(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 1))
	for i, f := range index.SynthFingerprints(rng, 200, 8, 8, 0.2) {
		if err := db.Add(fingerprint.Linkage{F: f, Y: i % 6, S: "p1"}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := shard.NewHashMap(2)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := shard.SplitDB(db, m)
	if err != nil {
		t.Fatal(err)
	}

	// One real daemon process per shard, each with a traces debug
	// sidecar.
	var replicas []shard.Replica
	var debugURLs []string
	for _, part := range parts {
		path := filepath.Join(t.TempDir(), "shard.db")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		d := spawnDaemon(t, "-db", path, "-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0", "-index", "flat")
		addr := waitForAddr(t, d.out)
		waitHealthy(t, fingerprint.NewClient("http://"+addr, nil))
		replicas = append(replicas, shard.NewHTTPReplica("http://"+addr, nil))
		debugURLs = append(debugURLs, "http://"+waitForDebugAddr(t, d.out))
	}

	// The router runs in-process with its own tracer, as caltrain-router
	// would wire it.
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	rt, err := shard.NewRouter(m, [][]shard.Replica{{replicas[0]}, {replicas[1]}},
		shard.WithObservability(fingerprint.Observability{Component: "router", Tracer: tracer}))
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	// One batch query touching both shards.
	body := `{"queries": [
		{"fingerprint": [1,0,0,0,0,0,0,0], "label": 0, "k": 3},
		{"fingerprint": [0,1,0,0,0,0,0,0], "label": 1, "k": 3},
		{"fingerprint": [0,0,1,0,0,0,0,0], "label": 2, "k": 3},
		{"fingerprint": [0,0,0,1,0,0,0,0], "label": 3, "k": 3}
	]}`
	resp, err := http.Post(routerSrv.URL+"/v1/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed batch: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		t.Fatal("router response missing X-Trace-Id")
	}

	// Router half of the trace: root → scatter → shard_attempt → rpc.
	snap := tracer.Store().Get(traceID)
	if snap == nil {
		t.Fatalf("trace %s not in the router store", traceID)
	}
	byID := map[string]obs.SpanSnapshot{}
	rpcIDs := map[string]bool{}
	scatters := 0
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "scatter":
			scatters++
		case "rpc":
			rpcIDs[sp.ID] = true
			attempt := byID[sp.Parent]
			if attempt.Name != "shard_attempt" {
				t.Fatalf("rpc parents under %q, want shard_attempt", attempt.Name)
			}
			if byID[attempt.Parent].Name != "scatter" {
				t.Fatalf("shard_attempt parents under %q, want scatter", byID[attempt.Parent].Name)
			}
		}
	}
	if scatters != 1 || len(rpcIDs) != 2 {
		t.Fatalf("router trace: %d scatter, %d rpc spans", scatters, len(rpcIDs))
	}

	// Each daemon's sidecar serves its part of the SAME trace, rooted
	// under one of the router's rpc spans. The daemon stores its half as
	// its request finishes, which races the router's response by a hair —
	// poll briefly.
	for i, base := range debugURLs {
		var remote obs.TraceSnapshot
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/debug/traces/" + traceID)
			if err != nil {
				t.Fatal(err)
			}
			ok := resp.StatusCode == http.StatusOK
			if ok {
				err = json.NewDecoder(resp.Body).Decode(&remote)
			}
			resp.Body.Close()
			if ok {
				if err != nil {
					t.Fatal(err)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d sidecar never served trace %s (status %d)", i, traceID, resp.StatusCode)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if remote.TraceID != traceID {
			t.Fatalf("shard %d trace ID %s, want %s", i, remote.TraceID, traceID)
		}
		if len(remote.Spans) == 0 {
			t.Fatalf("shard %d trace has no spans", i)
		}
		root := remote.Spans[0]
		for _, sp := range remote.Spans {
			if sp.Name == remote.Root {
				root = sp
				break
			}
		}
		if !rpcIDs[root.Parent] {
			t.Fatalf("shard %d root span parent %q is not one of the router's rpc spans", i, root.Parent)
		}
		found := false
		for _, sp := range remote.Spans {
			if sp.Name == "search" {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d trace lacks a search span: %+v", i, remote.Spans)
		}
	}
}
