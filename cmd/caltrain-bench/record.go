package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"caltrain/internal/fingerprint"
	"caltrain/internal/index"
	"caltrain/internal/kernel"
)

// benchRecord is the persisted trajectory entry (BENCH_*.json): enough
// context to compare runs across commits and machines, plus per-
// backend × per-kernel serving latency.
type benchRecord struct {
	Bench  string      `json:"bench"`
	Config benchConfig `json:"config"`
	Host   benchHost   `json:"host"`
	// Results has one row per backend × kernel implementation; rows for
	// the same backend differ only in the distance kernel, so their
	// ratio is the pure SIMD speedup.
	Results []benchResult `json:"results"`
}

type benchConfig struct {
	Entries int     `json:"entries"`
	Queries int     `json:"queries"`
	Dim     int     `json:"dim"`
	Modes   int     `json:"modes"`
	Sigma   float64 `json:"sigma"`
	K       int     `json:"k"`
	Seed    uint64  `json:"seed"`
}

type benchHost struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Kernels    []string `json:"kernels"`
}

type benchResult struct {
	Backend string  `json:"backend"`
	Kernel  string  `json:"kernel"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
	MeanUs  float64 `json:"mean_us"`
	// BytesPerEntry is the index's resident search geometry
	// (VectorBytes) divided by the entry count — the axis the
	// product-quantized backend trades latency against. Identical
	// across kernel rows for the same backend.
	BytesPerEntry float64 `json:"bytes_per_entry"`
	// EntriesPerSecPerCore is class entries covered per wall-second,
	// normalized by GOMAXPROCS. For the exact backends this is true
	// scan throughput; for IVF it is effective throughput (the index
	// answers as fast as an exhaustive scan at this rate would).
	EntriesPerSecPerCore float64 `json:"entries_per_sec_per_core"`
	// SpeedupVsGeneric is mean latency under the generic kernel divided
	// by mean latency under this one; 0 for the generic rows.
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
}

// resolveRecordPath turns the -record argument into a concrete target.
// "auto" numbers the entry one past the highest BENCH_NNN.json in the
// current directory — the trajectory stays strictly ordered even if an
// old entry was deleted — and an explicit path must not already exist:
// a committed trajectory entry is never silently overwritten.
func resolveRecordPath(path string) (string, error) {
	if path == "auto" {
		high := 0
		existing, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			return "", err
		}
		for _, p := range existing {
			var n int
			if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%d.json", &n); err == nil && n > high {
				high = n
			}
		}
		return fmt.Sprintf("BENCH_%03d.json", high+1), nil
	}
	if _, err := os.Stat(path); err == nil {
		return "", fmt.Errorf("%s already exists; bench trajectory entries are append-only (use -record auto for the next free slot)", path)
	}
	return path, nil
}

// runRecord measures accountability-query serving latency — flat, IVF,
// and IVFPQ backends under every registered distance kernel, on the
// clustered single-label workload BenchmarkQueryScaling uses — and
// persists the result as JSON. This is the bench-trajectory producer:
// one committed BENCH_*.json per milestone.
func runRecord(path string, entries, queries, dim int, seed uint64) error {
	path, err := resolveRecordPath(path)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = 15
	}
	const k, modes, sigma = 9, 256, 0.15
	fmt.Printf("record: building %d entries (dim %d) + %d queries\n", entries, dim, queries)
	rng := rand.New(rand.NewPCG(seed, uint64(entries)))
	fps := index.SynthFingerprints(rng, entries+queries, dim, modes, sigma)
	db, err := fingerprint.NewDB(dim)
	if err != nil {
		return err
	}
	for _, f := range fps[:entries] {
		if err := db.Add(fingerprint.Linkage{F: f, Y: 0, S: "s"}); err != nil {
			return err
		}
	}
	qs := fps[entries:]
	flat := index.NewFlat(db)
	ivf, err := index.TrainIVF(db, index.IVFOptions{Seed: 16})
	if err != nil {
		return err
	}
	pq, err := index.TrainIVFPQ(db, index.IVFPQOptions{IVFOptions: index.IVFOptions{Seed: 16}})
	if err != nil {
		return err
	}

	rec := benchRecord{
		Bench:  "query-serving",
		Config: benchConfig{Entries: entries, Queries: queries, Dim: dim, Modes: modes, Sigma: sigma, K: k, Seed: seed},
		Host:   benchHost{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0)},
	}
	genericMean := map[string]float64{}
	for _, im := range kernel.Impls() {
		rec.Host.Kernels = append(rec.Host.Kernels, im.Name)
		restore, err := kernel.SetActive(im.Name)
		if err != nil {
			return err
		}
		for _, bk := range []struct {
			name string
			s    fingerprint.Searcher
			geom int64
		}{{"flat", flat, flat.VectorBytes()}, {"ivf", ivf, ivf.VectorBytes()}, {"ivfpq", pq, pq.VectorBytes()}} {
			r, err := measureBackend(bk.s, qs, entries, k)
			if err != nil {
				restore()
				return fmt.Errorf("%s/%s: %w", bk.name, im.Name, err)
			}
			r.Backend, r.Kernel = bk.name, im.Name
			r.BytesPerEntry = float64(bk.geom) / float64(entries)
			if im.Name == "generic" {
				genericMean[bk.name] = r.MeanUs
			} else if g := genericMean[bk.name]; g > 0 {
				r.SpeedupVsGeneric = g / r.MeanUs
			}
			rec.Results = append(rec.Results, r)
			fmt.Printf("record: %-5s kernel=%-7s p50=%8.1fµs p99=%8.1fµs mean=%8.1fµs %.3g entries/s/core %.1f B/entry\n",
				r.Backend, r.Kernel, r.P50us, r.P99us, r.MeanUs, r.EntriesPerSecPerCore, r.BytesPerEntry)
		}
		restore()
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	// O_EXCL re-checks the resolve-time guarantee at write time: even if
	// the slot was taken during the measurement, nothing is clobbered.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("record: wrote %s\n", path)
	return nil
}

// measureBackend answers every query once (after a short warmup) and
// reports per-query latency percentiles plus normalized scan throughput.
func measureBackend(s fingerprint.Searcher, qs []fingerprint.Fingerprint, entries, k int) (benchResult, error) {
	for _, q := range qs[:min(50, len(qs))] {
		if _, err := s.Search(q, 0, k); err != nil {
			return benchResult{}, err
		}
	}
	durs := make([]time.Duration, len(qs))
	start := time.Now()
	for i, q := range qs {
		t0 := time.Now()
		if _, err := s.Search(q, 0, k); err != nil {
			return benchResult{}, err
		}
		durs[i] = time.Since(t0)
	}
	wall := time.Since(start)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return benchResult{
		P50us:                us(durs[len(durs)/2]),
		P99us:                us(durs[len(durs)*99/100]),
		MeanUs:               us(total / time.Duration(len(durs))),
		EntriesPerSecPerCore: float64(entries) * float64(len(qs)) / wall.Seconds() / float64(runtime.GOMAXPROCS(0)),
	}, nil
}
