// Command caltrain-bench regenerates the paper's evaluation tables and
// figures (§VI) on the synthetic substrates.
//
// Usage:
//
//	caltrain-bench -exp all                 # everything, default scale
//	caltrain-bench -exp fig3,fig4           # Experiment I only
//	caltrain-bench -exp fig6 -scale 4       # Experiment III, bigger nets
//	caltrain-bench -exp fig7,fig8           # the accountability study
//
// Experiments: tables, fig3, fig4, fig5, fig6, fig7, fig8, all.
// Larger -scale values shrink the networks (filter counts are divided by
// scale); -scale 1 is the exact paper architecture (slow in pure Go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"caltrain/internal/experiments"
	"caltrain/internal/nn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caltrain-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: tables,fig3,fig4,fig5,fig6,fig7,fig8,security,all")
		scale    = flag.Int("scale", 0, "architecture scale divisor (1 = exact paper networks)")
		perClass = flag.Int("per-class", 0, "training images per class")
		epochs   = flag.Int("epochs", 0, "training epochs (paper: 12)")
		batch    = flag.Int("batch", 0, "mini-batch size")
		parties  = flag.Int("participants", 0, "number of training participants")
		seed     = flag.Uint64("seed", 0, "experiment seed")

		record        = flag.String("record", "", "measure query-serving latency and write a BENCH_*.json trajectory entry to this path (skips experiments); \"auto\" picks the next free BENCH_NNN.json, an existing path is refused")
		recordEntries = flag.Int("record-entries", 100_000, "class size for -record")
		recordQueries = flag.Int("record-queries", 500, "measured queries for -record")
		recordDim     = flag.Int("record-dim", 64, "fingerprint dimensionality for -record")
	)
	flag.Parse()

	if *record != "" {
		return runRecord(*record, *recordEntries, *recordQueries, *recordDim, *seed)
	}

	p := experiments.Defaults()
	if *scale > 0 {
		p.Scale = *scale
	}
	if *perClass > 0 {
		p.TrainPerClass = *perClass
	}
	if *epochs > 0 {
		p.Epochs = *epochs
	}
	if *batch > 0 {
		p.BatchSize = *batch
	}
	if *parties > 0 {
		p.Participants = *parties
	}
	if *seed > 0 {
		p.Seed = *seed
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	runOne := func(name string, fn func() error) error {
		fmt.Fprintf(w, ">>> %s\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "<<< %s done in %s\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if all || want["tables"] {
		if err := runOne("tables", func() error { return experiments.Tables(p, w) }); err != nil {
			return err
		}
	}
	if all || want["fig3"] {
		err := runOne("fig3 (Experiment I, 10-layer)", func() error {
			_, err := experiments.RunExperimentI(nn.TableI(p.Scale), p, w)
			return err
		})
		if err != nil {
			return err
		}
	}
	if all || want["fig4"] {
		err := runOne("fig4 (Experiment I, 18-layer)", func() error {
			_, err := experiments.RunExperimentI(nn.TableII(p.Scale), p, w)
			return err
		})
		if err != nil {
			return err
		}
	}
	if all || want["fig5"] {
		err := runOne("fig5 (Experiment II, exposure assessment)", func() error {
			_, err := experiments.RunExperimentII(experiments.ExpIIParams{Params: p}, w)
			return err
		})
		if err != nil {
			return err
		}
	}
	if all || want["fig6"] {
		err := runOne("fig6 (Experiment III, training overhead)", func() error {
			_, err := experiments.RunExperimentIII(p, w)
			return err
		})
		if err != nil {
			return err
		}
	}
	if all || want["security"] {
		err := runOne("security (§VII attack analysis)", func() error {
			_, err := experiments.RunSecurity(p, w)
			return err
		})
		if err != nil {
			return err
		}
	}
	if all || want["fig7"] || want["fig8"] {
		err := runOne("fig7+fig8 (Experiment IV, accountability)", func() error {
			sc, err := experiments.BuildScenario(experiments.ExpIVParams{Params: p})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "trojaning attack: success %.1f%%, clean accuracy %.1f%%\n\n",
				100*sc.Attack.SuccessRate, 100*sc.Attack.CleanAccuracy)
			if all || want["fig7"] {
				if _, err := experiments.RunFig7(sc, w); err != nil {
					return err
				}
			}
			if all || want["fig8"] {
				if _, err := experiments.RunFig8(sc, w); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
