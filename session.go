package caltrain

import (
	"fmt"
	"math/rand/v2"
	"net/http"

	"caltrain/internal/assess"
	"caltrain/internal/attest"
	"caltrain/internal/core"
	"caltrain/internal/fingerprint"
	"caltrain/internal/nn"
	"caltrain/internal/partition"
	"caltrain/internal/tensor"
	"caltrain/internal/trojan"
)

func assessNew(model, oracle *Network, opts ExposureOptions) *assess.Framework {
	return assess.New(model, oracle, opts)
}

// Session drives one complete CalTrain collaborative-training cycle
// through its three stages (Figure 2 of the paper): training,
// fingerprinting, and query.
//
// The zero value is not usable; construct with NewSession, then
// AddParticipant, Train, Fingerprint, and QueryHandler in that order.
type Session struct {
	cfg          SessionConfig
	authority    *attest.Authority
	authorityPub []byte
	server       *core.TrainingServer
	participants []*Participant
	fps          *core.FingerprintService
	db           *fingerprint.DB
	history      []EpochStats
}

// EpochStats records one training epoch's outcome.
type EpochStats struct {
	Epoch    int
	MeanLoss float64
}

// NewSession creates the training server (enclave, attestation
// infrastructure) for the given consensus config.
func NewSession(cfg SessionConfig) (*Session, error) {
	authority, err := attest.NewAuthority()
	if err != nil {
		return nil, err
	}
	authorityPub, err := authority.PublicKey()
	if err != nil {
		return nil, err
	}
	server, err := core.NewTrainingServer(cfg, authority)
	if err != nil {
		return nil, err
	}
	return &Session{
		cfg:          cfg,
		authority:    authority,
		authorityPub: authorityPub,
		server:       server,
	}, nil
}

// AddParticipant registers a participant: it attests the training enclave
// against the independently computed expected measurement, provisions the
// participant's key, and ingests their sealed records. It returns how many
// records the enclave accepted.
func (s *Session) AddParticipant(p *Participant) (accepted int, err error) {
	expected, err := core.ExpectedTrainingMeasurement(s.cfg)
	if err != nil {
		return 0, err
	}
	if err := p.Provision(s.server, s.authorityPub, expected); err != nil {
		return 0, fmt.Errorf("caltrain: provision %s: %w", p.ID, err)
	}
	batch, err := p.SealRecords()
	if err != nil {
		return 0, err
	}
	accepted, _, err = s.server.Ingest(batch)
	if err != nil {
		return 0, err
	}
	s.participants = append(s.participants, p)
	return accepted, nil
}

// Train runs the configured number of epochs of partitioned confidential
// training and returns the per-epoch loss history.
func (s *Session) Train() ([]EpochStats, error) {
	for e := 0; e < s.cfg.Epochs; e++ {
		loss, err := s.server.TrainEpoch()
		if err != nil {
			return nil, fmt.Errorf("caltrain: epoch %d: %w", e+1, err)
		}
		s.history = append(s.history, EpochStats{Epoch: len(s.history) + 1, MeanLoss: loss})
	}
	return s.history, nil
}

// TrainEpoch runs a single epoch (for callers interleaving training with
// per-epoch exposure assessment and repartitioning).
func (s *Session) TrainEpoch() (EpochStats, error) {
	loss, err := s.server.TrainEpoch()
	if err != nil {
		return EpochStats{}, err
	}
	st := EpochStats{Epoch: len(s.history) + 1, MeanLoss: loss}
	s.history = append(s.history, st)
	return st, nil
}

// WarmStart initializes the session's model from a previously released
// network, supplied by a registered participant (it travels sealed under
// their provisioned key). Refinement rounds — continuing training on new
// submissions instead of starting from fresh weights — use this.
func (s *Session) WarmStart(p *Participant, net *Network) error {
	blob, err := p.SealModelSync(net)
	if err != nil {
		return err
	}
	return s.server.ImportFull(p.ID, blob)
}

// Repartition moves the FrontNet/BackNet boundary between epochs, after
// the participants reach consensus on a new split from their assessment
// results (§IV-B).
func (s *Session) Repartition(split int) error {
	return s.server.Trainer().Repartition(split)
}

// Split returns the current FrontNet size.
func (s *Session) Split() int { return s.server.Trainer().Split() }

// Release produces the model release for one registered participant:
// BackNet in the clear, FrontNet sealed under their provisioned key.
func (s *Session) Release(participantID string) (*ReleasedModel, error) {
	return s.server.ReleaseModel(participantID)
}

// Evaluate reports top-1/top-k accuracy of the current model state on a
// labeled dataset. It is a harness convenience: in a deployment only
// participants evaluate, on their own released models.
func (s *Session) Evaluate(ds *Dataset, k int) (top1, topK float64, err error) {
	in, labels := ds.Batch(0, ds.Len())
	return s.server.Trainer().Evaluate(in, labels, k)
}

// Fingerprint runs the fingerprinting stage: a dedicated enclave receives
// the trained model over the local-attestation channel, each participant
// attests it and re-provisions their key, re-submits sealed records, and
// the linkage database is built in-enclave and exported.
func (s *Session) Fingerprint() (*LinkageDB, error) {
	fps, err := core.NewFingerprintService(s.server.Device(), s.cfg.Model, s.authority, s.cfg.EPCSize)
	if err != nil {
		return nil, err
	}
	blob, err := s.server.ExportModelFor(fps.Measurement())
	if err != nil {
		return nil, err
	}
	if err := fps.LoadModel(blob, s.server.Measurement()); err != nil {
		return nil, err
	}
	expected, err := core.ExpectedFingerprintMeasurement(s.cfg.Model)
	if err != nil {
		return nil, err
	}
	for _, p := range s.participants {
		if err := p.Provision(fps, s.authorityPub, expected); err != nil {
			return nil, fmt.Errorf("caltrain: fingerprint provision %s: %w", p.ID, err)
		}
		batch, err := p.SealRecords()
		if err != nil {
			return nil, err
		}
		if _, _, err := fps.Fingerprint(batch); err != nil {
			return nil, err
		}
	}
	s.fps = fps
	s.db, err = fps.ExportDB()
	if err != nil {
		return nil, err
	}
	return s.db, nil
}

// QueryService returns the accountability query service over the
// session's linkage database. Fingerprint must have been called first.
// By default queries run on an exact Flat index snapshot of the database;
// pass options to select another backend (WithIVFBackend for approximate
// search at scale, WithLinearBackend for the reference scan, or
// WithBackendSpec for any custom BackendSpec) or to bound request sizes
// (WithServiceOptions). The service is read-only; IngestService adds
// the durable write path.
func (s *Session) QueryService(opts ...QueryHandlerOption) (*QueryService, error) {
	if err := s.checkServable(); err != nil {
		return nil, err
	}
	built, err := s.deployment(opts).Build(s.db)
	if err != nil {
		return nil, err
	}
	return built.Service(), nil
}

// deployment translates QueryHandler options into the declarative
// Deployment every Session serving constructor builds through. The
// caller must still check s.db (deployment cannot build over nil).
func (s *Session) deployment(opts []QueryHandlerOption) Deployment {
	cfg := queryHandlerConfig{spec: FlatSpec{}}
	for _, o := range opts {
		o(&cfg)
	}
	return Deployment{Backend: cfg.spec, Limits: cfg.svc}
}

// checkServable guards every serving constructor: the linkage database
// exists only after Fingerprint.
func (s *Session) checkServable() error {
	if s.db == nil {
		return fmt.Errorf("caltrain: run Fingerprint before serving queries")
	}
	return nil
}

// QueryHandler returns the HTTP handler of the accountability query
// service over the session's linkage database. Fingerprint must have been
// called first. Options select and tune the index backend; see
// QueryService.
func (s *Session) QueryHandler(opts ...QueryHandlerOption) (http.Handler, error) {
	svc, err := s.QueryService(opts...)
	if err != nil {
		return nil, err
	}
	return svc.Handler(), nil
}

// IngestService returns the accountability query service over the
// session's linkage database with the durable write path enabled: new
// linkages POSTed to /ingest are CRC-framed into a write-ahead log at
// walDir before they are applied to the database and appended into the
// serving index, so acknowledged writes survive a crash (reopen with
// the same walDir to replay). IVF backends retrain and hot-swap in the
// background once appends drift past opts.DriftThreshold. Fingerprint
// must have been called first.
//
// The returned store is the service's write path: Snapshot compacts the
// WAL once the database is persisted, Close flushes it. The linear
// backend (WithLinearBackend) ingests with no index append at all; Flat
// stays exact under appends; IVF trades recall for append speed until
// its background retrain.
func (s *Session) IngestService(walDir string, iopts IngestOptions, opts ...QueryHandlerOption) (*QueryService, *IngestStore, error) {
	if err := s.checkServable(); err != nil {
		return nil, nil, err
	}
	dep := s.deployment(opts)
	dep.WAL = &WALConfig{Dir: walDir, Store: iopts}
	built, err := dep.Build(s.db)
	if err != nil {
		return nil, nil, err
	}
	return built.Service(), built.Store(), nil
}

// IngestHandler returns the HTTP handler of an ingest-enabled query
// service (see IngestService) plus its write path store — keep the
// store to Snapshot and Close it.
func (s *Session) IngestHandler(walDir string, iopts IngestOptions, opts ...QueryHandlerOption) (http.Handler, *IngestStore, error) {
	svc, store, err := s.IngestService(walDir, iopts, opts...)
	if err != nil {
		return nil, nil, err
	}
	return svc.Handler(), store, nil
}

// RouterHandler returns the HTTP handler of a sharded accountability
// deployment built in-process from the session's linkage database: the
// database is hash-split across nshards shards, each served by its own
// query service over the configured index backend, behind a
// scatter-gather router speaking the single-daemon protocol. The
// deployment carries the write path: POST /ingest routes each new
// linkage to the shard owning its label (non-durable, and with no
// drift-triggered retrain — back the topology with IngestService-style
// WAL stores, or run the real caltrain-router, when writes must
// survive a restart or arrive in volume against an IVF backend).
// Fingerprint must have been called first.
//
// This is the one-process model of the production topology
// (caltrain-shard + N×caltrain-serve + caltrain-router); use it to
// exercise routing semantics, or as the serving handler on a machine
// where per-shard daemons are not worth their operational cost. With
// nshards below 2 it serves a single (unsharded) query service.
func (s *Session) RouterHandler(nshards int, opts ...QueryHandlerOption) (http.Handler, error) {
	if err := s.checkServable(); err != nil {
		return nil, err
	}
	dep := s.deployment(opts)
	dep.Shards = nshards
	dep.VolatileWrites = true
	built, err := dep.Build(s.db)
	if err != nil {
		return nil, err
	}
	return built.Handler(), nil
}

// queryHandlerConfig collects QueryHandler option state.
type queryHandlerConfig struct {
	spec BackendSpec
	svc  []ServiceOption
}

// QueryHandlerOption configures Session.QueryHandler / QueryService.
type QueryHandlerOption func(*queryHandlerConfig)

// WithLinearBackend serves queries with the reference linear scan over
// the live database (no snapshot; new Add calls are visible).
func WithLinearBackend() QueryHandlerOption {
	return func(c *queryHandlerConfig) { c.spec = LinearSpec{} }
}

// WithFlatBackend serves queries with the exact Flat index (the default).
func WithFlatBackend() QueryHandlerOption {
	return func(c *queryHandlerConfig) { c.spec = FlatSpec{} }
}

// WithIVFBackend serves queries with the approximate IVF index.
func WithIVFBackend(opts IVFOptions) QueryHandlerOption {
	return func(c *queryHandlerConfig) { c.spec = IVFSpec{IVFOptions: opts} }
}

// WithIVFPQBackend serves queries with the product-quantized IVF index
// — IVF accuracy knobs plus the M memory knob, ~4·dim/M times smaller
// than the float backends.
func WithIVFPQBackend(opts IVFPQOptions) QueryHandlerOption {
	return func(c *queryHandlerConfig) { c.spec = IVFPQSpec{IVFPQOptions: opts} }
}

// WithBackendSpec serves queries with any BackendSpec — the seam where
// a future backend (PQ, HNSW, a custom Searcher) plugs into every
// Session serving constructor without facade changes.
func WithBackendSpec(spec BackendSpec) QueryHandlerOption {
	return func(c *queryHandlerConfig) { c.spec = spec }
}

// WithServiceOptions forwards limits to the underlying query service.
func WithServiceOptions(opts ...ServiceOption) QueryHandlerOption {
	return func(c *queryHandlerConfig) { c.svc = append(c.svc, opts...) }
}

// DB returns the linkage database built by Fingerprint (nil before).
func (s *Session) DB() *LinkageDB { return s.db }

// QueryFingerprint computes the fingerprint and predicted label of one
// input under a released model — what a model user does with a
// misprediction before querying the linkage database.
func QueryFingerprint(net *Network, image []float32) (Fingerprint, int, error) {
	return core.QueryFingerprint(net, image)
}

// AssessExposure runs the dual-network information-exposure assessment of
// a model against an oracle using the given probe images, returning the
// per-layer KL divergence report (§IV-B / Experiment II). Participants
// run this locally on semi-trained checkpoints with their private data.
func AssessExposure(model, oracle *Network, probes *Dataset, nProbes int, opts ExposureOptions) (*ExposureReport, error) {
	if nProbes > probes.Len() {
		nProbes = probes.Len()
	}
	in, _ := probes.Batch(0, nProbes)
	return assessNew(model, oracle, opts).Assess(in)
}

// Classify returns the top-k classes for every record of ds under net —
// a convenience for example programs.
func Classify(net *Network, ds *Dataset, k int) ([][]int, error) {
	in, _ := ds.Batch(0, ds.Len())
	return net.Classify(&nn.Context{Mode: tensor.Accelerated}, in, k)
}

// Accuracy returns top-1 and top-k accuracy of net on ds.
func Accuracy(net *Network, ds *Dataset, k int) (top1, topK float64, err error) {
	in, labels := ds.Batch(0, ds.Len())
	probs, err := net.Predict(&nn.Context{Mode: tensor.Accelerated}, in)
	if err != nil {
		return 0, 0, err
	}
	return partition.TopKAccuracy(probs, labels, k)
}

// BuildModel constructs a network from a config with a seeded weight
// initialization.
func BuildModel(cfg ModelConfig, seed uint64) (*Network, error) {
	return nn.Build(cfg, rand.New(rand.NewPCG(seed, seed^0x5eed)))
}

// TrainLocal fits a model on a dataset outside any enclave — the
// "non-protected environment" baseline of Experiment I, and the victim
// model of the Trojaning attack.
func TrainLocal(net *Network, ds *Dataset, epochs, batchSize int, opt SGD, seed uint64) error {
	return trojan.Retrain(net, ds, epochs, batchSize, opt, rand.New(rand.NewPCG(seed, 0x70CA1)))
}

// OptimizeTrigger generates a trojan trigger against a trained model by
// model inversion (for reproducing the §VI-D attack).
func OptimizeTrigger(net *Network, target int, seed uint64) (*Trigger, error) {
	return trojan.OptimizeTrigger(net, target, trojan.Options{}, rand.New(rand.NewPCG(seed, 0x7107)))
}

// PoisonDataset stamps the trigger onto n images drawn from source and
// labels them with the trigger's target class — the malicious
// participant's contribution in the §VI-D experiment.
func PoisonDataset(tr *Trigger, source *Dataset, n int, seed uint64) *Dataset {
	return tr.PoisonFrom(source, n, rand.New(rand.NewPCG(seed, 0xBAD)))
}

// StampDataset returns a copy of ds with every image carrying the
// trigger (labels unchanged) — trojaned test data.
func StampDataset(tr *Trigger, ds *Dataset) *Dataset {
	return tr.StampDataset(ds)
}
